"""Distributed campaign scheduler: plan → dispatch → collect.

PR 2 built the exchange protocol — digest-keyed shard JSONLs, resumable
valid prefixes, ``.digest`` sidecars, the merge invariants, the shared
:class:`~repro.core.cache.CampaignCache` — and left "only the scheduler
missing" for a distributed backend.  This module is that scheduler, as an
explicit three-phase pipeline:

* **plan** — :func:`CampaignPlan.build` decomposes one campaign into
  digest-keyed :class:`ShardJob`\\ s, reusing
  :class:`~repro.attacks.campaign.ShardSpec` so every worker computes the
  same partition with no coordination;
* **dispatch** — a :class:`WorkerBackend` executes the jobs, each one
  producing a shard JSONL plus its ``.digest`` sidecar.  Backends live in
  a registry (the :mod:`repro.sim.families` idiom):

  - :class:`InProcessBackend` wraps the Serial/Parallel executors —
    ``run_campaign`` is a thin façade over a single-shard plan on this
    backend, bit-identical to the historical path;
  - :class:`SubprocessFleetBackend` spawns N ``repro worker`` CLI
    processes, each consuming a shard-spec JSON file — a real fleet on
    one machine, and the exact protocol shape a remote backend needs;
  - :class:`SSHBackend` shells the same worker command through a
    configurable ``{command}`` template (``ssh host {command}``) — the
    stub a container/SSH fleet drops into, assuming a shared filesystem
    for the work directory and cache;

* **collect** — :func:`collect_shards` validates the shard files under
  the same invariants as ``repro merge`` (strict load, no overlap, no
  mixed labels) plus plan identity (sidecar digests, per-position episode
  identity), concatenates them into the unsharded campaign, and
  write-throughs the shared cache so the incremental report pipeline sees
  the completed grid.

Crash recovery falls out of the protocol: a worker killed mid-shard
leaves a valid JSONL prefix behind, and the next dispatch of the same
plan resumes that shard from the prefix — completed episodes never
re-execute.  A repeat dispatch of a fully-cached plan executes zero
episodes and spawns zero workers.
"""

from __future__ import annotations

import abc
import json
import os
import pickle
import shlex
import shutil
import subprocess
import sys
import tempfile
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.attacks.campaign import (
    CampaignSpec,
    EpisodeSpec,
    ShardSpec,
    as_episode_list,
)
from repro.core.cache import (
    CacheBackend,
    campaign_digest,
    canonical_episode,
    canonical_interventions,
    default_cache,
    episode_from_canonical,
    factory_token,
    interventions_from_canonical,
    read_digest_sidecar,
    write_digest_sidecar,
)
from repro.core.executor import (
    EXECUTOR_NAMES,
    resolve_executor,
    CampaignExecutor,
    EpisodeTask,
    available_cores,
    make_executor,
)
from repro.core.experiment import (
    CampaignResult,
    _validate_resume_prefix,
    merge_shards,
)
from repro.core.metrics import (
    EpisodeResult,
    PathLike,
    count_records,
    load_results,
    save_results,
)
from repro.safety.arbitration import InterventionConfig

ProgressCallback = Callable[[int, int], None]
LogCallback = Callable[[str], None]

#: Bump when the worker spec-file schema changes shape, so a newer
#: scheduler can never hand a job to an older worker silently.
WORKER_SPEC_FORMAT = 1


class SchedulerError(RuntimeError):
    """A dispatch or collect phase failure (worker death, protocol breach)."""


# --------------------------------------------------------------------- #
# Plan
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ShardJob:
    """One dispatchable unit: a contiguous, digest-keyed campaign slice.

    Attributes:
        shard: which slice of the plan this job covers.
        episodes: the slice itself, in enumeration order.
        interventions: the safety configuration under test.
        ml_factory: per-episode ML controller factory (None unless
            ``interventions.ml``); fleet backends require it picklable.
        ml_token: the factory's digest fingerprint (see
            :func:`repro.core.cache.factory_token`).
        platform_kwargs: normalised :class:`SimulationPlatform` overrides,
            as sorted ``(key, value)`` pairs (the
            :class:`~repro.core.executor.EpisodeTask` convention).
    """

    shard: ShardSpec
    episodes: Tuple[EpisodeSpec, ...]
    interventions: InterventionConfig
    ml_factory: Optional[Callable[[], object]] = None
    ml_token: Optional[str] = None
    platform_kwargs: Tuple[Tuple[str, object], ...] = ()

    @property
    def total(self) -> int:
        """Episode count of this shard."""
        return len(self.episodes)

    def digest(self) -> str:
        """Content digest of this shard as a standalone campaign.

        Identical to what ``repro campaign --shard I/N`` records in its
        sidecar for the same slice — the key a worker's results are
        validated (and optionally cached) under.  Computed lazily and
        memoized: the hot in-process single-shard path only pays for it
        when a cache or resume file is actually in play.
        """
        memo = self.__dict__.get("_digest")
        if memo is None:
            memo = campaign_digest(
                list(self.episodes),
                self.interventions,
                ml_token=self.ml_token,
                **dict(self.platform_kwargs),
            )
            object.__setattr__(self, "_digest", memo)
        return memo

    def file_name(self) -> str:
        """Canonical shard JSONL name inside a dispatch work directory.

        Carries both the shard position (so ``repro merge``'s name-order
        check applies) and the digest prefix (so one work directory can
        host shards of many campaigns without collision).
        """
        return (
            f"shard-{self.shard.index}-of-{self.shard.count}"
            f"-{self.digest()[:16]}.jsonl"
        )


@dataclass(frozen=True)
class CampaignPlan:
    """A campaign decomposed into its ordered, non-overlapping shard jobs.

    Build via :meth:`build`; the invariant (inherited from
    :class:`~repro.attacks.campaign.ShardSpec`) is that concatenating the
    jobs' episode slices reproduces the unsharded enumeration exactly —
    which is what lets :func:`collect_shards` validate the collected
    results against the plan position by position.
    """

    episodes: Tuple[EpisodeSpec, ...]
    interventions: InterventionConfig
    jobs: Tuple[ShardJob, ...]
    ml_factory: Optional[Callable[[], object]] = None
    ml_token: Optional[str] = None
    platform_kwargs: Tuple[Tuple[str, object], ...] = ()

    @property
    def total(self) -> int:
        """Episode count of the full campaign."""
        return len(self.episodes)

    def digest(self) -> str:
        """Content digest of the full (unsharded) campaign."""
        memo = self.__dict__.get("_digest")
        if memo is None:
            memo = campaign_digest(
                list(self.episodes),
                self.interventions,
                ml_token=self.ml_token,
                **dict(self.platform_kwargs),
            )
            object.__setattr__(self, "_digest", memo)
        return memo

    @classmethod
    def build(
        cls,
        campaign: Union[CampaignSpec, Sequence[EpisodeSpec]],
        interventions: InterventionConfig,
        shards: int = 1,
        ml_factory: Optional[Callable[[], object]] = None,
        **platform_kwargs,
    ) -> "CampaignPlan":
        """Decompose ``campaign`` into ``shards`` contiguous shard jobs.

        Args:
            campaign: a :class:`CampaignSpec` or pre-enumerated episode
                list (the same union every execution layer accepts).
            interventions: the safety configuration under test.
            shards: how many jobs to cut the enumeration into (>= 1);
                clamped to the episode count so no job is empty (a
                single empty job is kept for the empty campaign).
            ml_factory: required when ``interventions.ml``.
            **platform_kwargs: forwarded to every episode's platform.

        Raises:
            ValueError: non-positive ``shards``, or an ML campaign
                without a factory.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if interventions.ml and ml_factory is None:
            raise ValueError("interventions.ml=True requires ml_factory")
        episodes = tuple(as_episode_list(campaign))
        ml_token = factory_token(ml_factory) if interventions.ml else None
        kwargs = tuple(sorted((str(k), v) for k, v in platform_kwargs.items()))
        count = max(1, min(shards, len(episodes) or 1))
        jobs = tuple(
            ShardJob(
                shard=shard,
                episodes=tuple(shard.slice(episodes)),
                interventions=interventions,
                ml_factory=ml_factory,
                ml_token=ml_token,
                platform_kwargs=kwargs,
            )
            for shard in ShardSpec.partition(count)
        )
        return cls(
            episodes=episodes,
            interventions=interventions,
            jobs=jobs,
            ml_factory=ml_factory,
            ml_token=ml_token,
            platform_kwargs=kwargs,
        )


def resolve_cache(
    cache: Union[CacheBackend, None, bool]
) -> Optional[CacheBackend]:
    """Normalise the tri-state cache argument every entry point accepts.

    ``None``/``True`` defer to the ``REPRO_CACHE_DIR`` environment default,
    ``False`` disables caching outright, and a :class:`CacheBackend`
    passes through.
    """
    if cache is None or cache is True:
        return default_cache()
    if cache is False:
        return None
    return cache


def _cacheable(job_or_plan) -> bool:
    """Whether results may be keyed in a cache at all.

    An unfingerprintable ML factory (lambda/closure/stateful instance
    without a ``digest_token``) cannot key an entry safely; run uncached
    rather than risk serving another factory's results.
    """
    return not job_or_plan.interventions.ml or job_or_plan.ml_token is not None


# --------------------------------------------------------------------- #
# In-process shard execution (the primitive behind ``run_campaign``)
# --------------------------------------------------------------------- #


def execute_shard(
    job: ShardJob,
    jobs: Optional[int] = None,
    executor: Union[str, CampaignExecutor, None] = None,
    lanes: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    resume_path: Optional[PathLike] = None,
    cache: Union[CacheBackend, None, bool] = None,
) -> CampaignResult:
    """Run one :class:`ShardJob` to completion in this process.

    The single-shard execution primitive: ``run_campaign`` wraps exactly
    one of these, the :class:`InProcessBackend` runs one per planned
    shard, and a ``repro worker`` process runs one per spec file — so
    every path through the system shares one implementation of the
    cache-consult / resume / stream-to-disk behaviour.

    Args:
        job: the shard to execute.
        jobs: worker process count; ``None`` defers to the ``REPRO_JOBS``
            environment variable (then serial).  Ignored when ``executor``
            is given.
        executor: explicit execution backend — an
            :data:`~repro.core.executor.EXECUTOR_NAMES` name such as
            ``"batch"`` or a ready instance (overrides ``jobs``).
        lanes: peak lockstep lane count for ``executor="batch"``; ``None``
            defers to the ``REPRO_BATCH_LANES`` environment variable
            (then uncapped).  Ignored by the other executors.
        progress: optional ``(done, total)`` callback over this shard's
            episodes; under resume, ``done`` starts at the number of
            episodes already on disk.
        resume_path: shard JSONL file to resume into.  An existing file's
            valid prefix (truncated final lines tolerated) is loaded and
            its episodes skipped; only the remainder executes, streamed to
            the file batch by batch, and a ``.digest`` sidecar refuses
            files written under different inputs.
        cache: a :class:`CacheBackend` to consult/populate, ``None``/
            ``True`` for the ``REPRO_CACHE_DIR`` default, ``False`` to
            disable.  A hit returns the stored results without executing
            a single episode.

    Returns:
        A :class:`CampaignResult` in the shard's enumeration order,
        bit-identical regardless of backend, resumption or caching.
    """
    episodes = list(job.episodes)
    interventions = job.interventions
    ml_factory = job.ml_factory
    platform_kwargs = dict(job.platform_kwargs)
    label = interventions.label()
    total = len(episodes)

    cache = resolve_cache(cache)
    if cache is not None and not _cacheable(job):
        cache = None
    key: Optional[str] = None
    if cache is not None:
        key = job.digest()

    # ---- resume: load and validate the prefix *before* anything can
    # overwrite the file (a cache hit included) -------------------------
    resume_digest: Optional[str] = None
    prior: List[EpisodeResult] = []
    if resume_path is not None:
        resume_digest = job.digest()
        if os.path.exists(resume_path):
            recorded = read_digest_sidecar(resume_path)
            if recorded is not None and recorded != resume_digest:
                raise ValueError(
                    f"{resume_path}: recorded campaign digest {recorded[:16]}… "
                    f"does not match this invocation's {resume_digest[:16]}…; "
                    "the file was written under different inputs (platform "
                    "overrides, interventions or grid) — refusing to resume"
                )
            prior = load_results(resume_path)
            _validate_resume_prefix(prior, episodes, label, resume_path)

    # ---- cache consultation --------------------------------------------
    if key is not None:
        hit = cache.get(key)
        if (
            hit is not None
            and len(hit) == total
            and all(r.intervention == label for r in hit)
        ):
            if progress is not None:
                progress(total, total)
            if resume_path is not None:
                hit_tmp = f"{os.fspath(resume_path)}.tmp"
                save_results(hit, hit_tmp)
                os.replace(hit_tmp, resume_path)
                write_digest_sidecar(resume_path, resume_digest)
            return CampaignResult(intervention=label, results=hit)

    # ---- execute the remainder ------------------------------------------
    remaining = episodes[len(prior) :]
    tasks = [
        EpisodeTask.make(
            spec,
            interventions,
            ml_factory=ml_factory if interventions.ml else None,
            **platform_kwargs,
        )
        for spec in remaining
    ]
    skipped = len(prior)
    if progress is not None and skipped:
        progress(skipped, total)
    backend = resolve_executor(executor, jobs, lanes)

    new: List[EpisodeResult] = []
    if resume_path is None:
        offset_progress = (
            None
            if progress is None
            else (lambda done, _remaining_total: progress(skipped + done, total))
        )
        new = backend.run(tasks, progress=offset_progress)
    else:
        # Rewrite the validated prefix once (dropping any truncated tail),
        # then stream completed episodes to the file batch by batch: an
        # interrupted run leaves a valid, resumable prefix behind instead
        # of nothing.  The rewrite goes through a temp file + atomic rename
        # so a crash mid-rewrite cannot destroy the episodes already earned;
        # a crash mid-append only dangles a final line, which the next
        # resume's prefix load already tolerates.  Batches are a few
        # dispatch rounds wide so streaming costs little parallel efficiency.
        rewrite_tmp = f"{os.fspath(resume_path)}.tmp"
        save_results(prior, rewrite_tmp)
        os.replace(rewrite_tmp, resume_path)
        write_digest_sidecar(resume_path, resume_digest)
        batch_size = max(8, 4 * getattr(backend, "jobs", 1))
        for start in range(0, len(tasks), batch_size):
            batch = tasks[start : start + batch_size]
            done_before = skipped + len(new)
            batch_progress = (
                None
                if progress is None
                else (lambda done, _t, _base=done_before: progress(_base + done, total))
            )
            batch_results = backend.run(batch, progress=batch_progress)
            new.extend(batch_results)
            save_results(batch_results, resume_path, append=True)

    results = prior + new
    if cache is not None and key is not None:
        cache.put(key, results)
    return CampaignResult(intervention=label, results=results)


# --------------------------------------------------------------------- #
# Worker spec files (the fleet exchange format)
# --------------------------------------------------------------------- #


@dataclass
class WorkerJob:
    """A :class:`ShardJob` as reconstructed by a ``repro worker`` process.

    Attributes:
        shard: which slice this worker owns.
        episodes: the reconstructed episode slice.
        interventions: the reconstructed safety configuration.
        platform_kwargs: platform overrides for every episode.
        digest: the shard digest the scheduler recorded (already verified
            against a local recomputation by :func:`load_job_spec`).
        output: shard JSONL destination (resolved to an absolute path).
        cache_dir: shared cache directory, or None for an uncached run —
            the scheduler resolves cache policy (environment included) at
            dispatch time, so workers never consult their own
            ``REPRO_CACHE_DIR``.
        ml_pickle: pickled ML-factory path, or None.
        ml_token: the factory fingerprint the digest was computed with.
    """

    shard: ShardSpec
    episodes: List[EpisodeSpec]
    interventions: InterventionConfig
    platform_kwargs: Dict[str, object]
    digest: str
    output: str
    cache_dir: Optional[str] = None
    ml_pickle: Optional[str] = None
    ml_token: Optional[str] = None


def write_job_spec(
    job: ShardJob,
    path: PathLike,
    output: str,
    cache_dir: Optional[str] = None,
    ml_pickle: Optional[str] = None,
) -> str:
    """Serialise one shard job for a ``repro worker`` process.

    ``output`` and ``ml_pickle`` should be bare names or paths relative to
    the spec file's directory — workers resolve them against it, so a
    work directory stays relocatable across the machines of a fleet
    (only ``cache_dir`` is absolute: the shared cache is a global
    location by definition).

    Episodes and interventions travel in their canonical digest forms
    (:func:`~repro.core.cache.canonical_episode`), so the worker can
    reconstruct the slice and *recompute* the digest — scheduler/worker
    version skew is detected before a single episode runs.
    """
    doc = {
        "format": WORKER_SPEC_FORMAT,
        "shard": {"index": job.shard.index, "count": job.shard.count},
        "digest": job.digest(),
        "episodes": [canonical_episode(spec) for spec in job.episodes],
        "interventions": canonical_interventions(job.interventions),
        "platform": dict(job.platform_kwargs),
        "output": output,
        "cache_dir": cache_dir,
        "ml": None
        if job.ml_factory is None
        else {"factory_pickle": ml_pickle, "token": job.ml_token},
    }
    directory = os.path.dirname(os.fspath(path)) or "."
    fd, tmp = tempfile.mkstemp(prefix=".spec-", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)
    return os.fspath(path)


def load_job_spec(path: PathLike) -> WorkerJob:
    """Parse and verify a worker spec file written by :func:`write_job_spec`.

    Raises:
        ValueError: unknown format version, malformed content, or a digest
            mismatch between the spec's recorded digest and one recomputed
            from the reconstructed episodes — the scheduler and this worker
            disagree on campaign identity (version skew), and running
            anyway would poison the shard exchange.
    """
    spec_path = os.fspath(path)
    with open(spec_path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or doc.get("format") != WORKER_SPEC_FORMAT:
        raise ValueError(
            f"{spec_path}: unsupported worker spec format "
            f"{doc.get('format') if isinstance(doc, dict) else doc!r} "
            f"(this worker speaks format {WORKER_SPEC_FORMAT})"
        )
    try:
        shard = ShardSpec(
            index=int(doc["shard"]["index"]), count=int(doc["shard"]["count"])
        )
        episodes = [episode_from_canonical(form) for form in doc["episodes"]]
        interventions = interventions_from_canonical(doc["interventions"])
        platform_kwargs = {str(k): v for k, v in (doc.get("platform") or {}).items()}
        recorded = str(doc["digest"])
        output = str(doc["output"])
    except (KeyError, TypeError) as exc:
        raise ValueError(f"{spec_path}: malformed worker spec ({exc})") from exc
    ml_doc = doc.get("ml")
    ml_token = None if ml_doc is None else ml_doc.get("token")
    recomputed = campaign_digest(
        episodes, interventions, ml_token=ml_token, **platform_kwargs
    )
    if recomputed != recorded:
        raise ValueError(
            f"{spec_path}: spec records digest {recorded[:16]}… but this "
            f"worker recomputes {recomputed[:16]}… from the same episodes; "
            "scheduler and worker disagree on campaign identity (version "
            "skew?) — refusing to run"
        )
    base = os.path.dirname(spec_path) or "."

    def _resolve(name: Optional[str]) -> Optional[str]:
        if name is None:
            return None
        return name if os.path.isabs(name) else os.path.join(base, name)

    ml_pickle = None if ml_doc is None else _resolve(ml_doc.get("factory_pickle"))
    return WorkerJob(
        shard=shard,
        episodes=episodes,
        interventions=interventions,
        platform_kwargs=platform_kwargs,
        digest=recorded,
        output=_resolve(output),
        cache_dir=doc.get("cache_dir"),
        ml_pickle=ml_pickle,
        ml_token=ml_token,
    )


# --------------------------------------------------------------------- #
# Worker backends
# --------------------------------------------------------------------- #


class UnknownBackendError(ValueError):
    """A backend name no registered worker backend claims."""

    def __init__(self, name: object, registered: Sequence[str]) -> None:
        self.backend_name = name
        self.registered = tuple(registered)
        names = ", ".join(self.registered) if self.registered else "(none)"
        super().__init__(
            f"unknown worker backend {name!r}; registered backends: {names}"
        )


class WorkerBackend(abc.ABC):
    """Dispatches the shard jobs of a :class:`CampaignPlan`.

    Implementations must leave, for every job, a complete shard JSONL
    (plus ``.digest`` sidecar) at ``workdir/<job.file_name()>`` — the
    protocol contract :func:`collect_shards` validates.  Jobs whose shard
    file is already complete must be skipped, which is what makes
    re-dispatch after a crash resume instead of recompute.
    """

    #: Registry name (set by subclasses).
    name: str = ""

    def default_shard_count(self) -> int:
        """How many shards to plan when the caller does not say."""
        return 1

    @abc.abstractmethod
    def run(
        self,
        plan: CampaignPlan,
        workdir: str,
        cache: Optional[CacheBackend] = None,
        progress: Optional[ProgressCallback] = None,
        log: Optional[LogCallback] = None,
    ) -> List[str]:
        """Execute every job of ``plan``; return shard paths in shard order."""


def shard_path(job: ShardJob, workdir: str) -> str:
    """Where a job's shard JSONL lives inside a work directory."""
    return os.path.join(workdir, job.file_name())


def shard_complete(job: ShardJob, path: PathLike) -> bool:
    """Cheap completeness probe for a shard file (skip-before-spawn).

    True when the file exists, its sidecar (if any) names this job's
    digest, and its resumable prefix covers every episode.  Cheap by
    design — :func:`collect_shards` still strict-validates before any
    result is used.
    """
    if not os.path.exists(path):
        return False
    recorded = read_digest_sidecar(path)
    if recorded is not None and recorded != job.digest():
        return False
    return count_records(path) >= job.total


class InProcessBackend(WorkerBackend):
    """Runs every shard in this process via the executor layer.

    The reference backend: zero dispatch overhead beyond the shard files
    themselves, and the one ``run_campaign`` degenerates to.  ``workers``
    maps to the executor's process-pool size (``jobs``), so
    ``--backend in-process --workers 4`` parallelises episodes exactly
    like ``--jobs 4``.
    """

    name = "in-process"

    def __init__(
        self,
        workers: Optional[int] = None,
        jobs: Optional[int] = None,
        executor: Union[str, CampaignExecutor, None] = None,
        lanes: Optional[int] = None,
    ) -> None:
        self.jobs = jobs if jobs is not None else workers
        if isinstance(executor, str) and executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of "
                f"{', '.join(EXECUTOR_NAMES)}"
            )
        self.executor = executor
        self.lanes = lanes

    def run(
        self,
        plan: CampaignPlan,
        workdir: str,
        cache: Optional[CacheBackend] = None,
        progress: Optional[ProgressCallback] = None,
        log: Optional[LogCallback] = None,
    ) -> List[str]:
        paths: List[str] = []
        done = 0
        for job in plan.jobs:
            path = shard_path(job, workdir)
            if shard_complete(job, path):
                if log is not None:
                    log(f"shard {job.shard}: already complete, skipping")
            else:
                if log is not None:
                    log(f"shard {job.shard}: running {job.total} episodes in-process")
                offset = done
                sub_progress = (
                    None
                    if progress is None
                    else (lambda d, _t, _o=offset: progress(_o + d, plan.total))
                )
                execute_shard(
                    job,
                    jobs=self.jobs,
                    executor=self.executor,
                    lanes=self.lanes,
                    progress=sub_progress,
                    resume_path=path,
                    cache=cache if cache is not None else False,
                )
            done += job.total
            if progress is not None:
                progress(done, plan.total)
            paths.append(path)
        return paths


@dataclass
class _WorkerSlot:
    """Book-keeping for one fleet job across spawn attempts."""

    job: ShardJob
    spec_path: str
    output_path: str
    log_path: str
    attempts: int = 0


class SubprocessFleetBackend(WorkerBackend):
    """A fleet of ``repro worker`` subprocesses on this machine.

    Each worker consumes a shard-spec JSON file and emits the shard JSONL
    plus its ``.digest`` sidecar — the exact exchange an SSH or container
    backend performs, which is why this backend doubles as the protocol
    reference.  Worker stdout/stderr streams append to a per-shard log
    file next to the shard (``<shard>.log``).

    A worker that dies (non-zero exit, killed mid-shard) is relaunched up
    to ``max_retries`` times; because workers resume from the shard
    file's valid JSONL prefix, completed episodes never re-execute.

    Args:
        workers: concurrent worker processes (default: up to 2, bounded
            by the cores this process may use).
        jobs: per-worker process-pool size (``repro worker --jobs``).
        python: interpreter for the worker command (default: this one).
        worker_args: extra arguments appended to every worker command.
        max_retries: relaunch budget per shard after the first attempt.
        poll_interval: seconds between liveness polls of the fleet
            (must be positive — zero would busy-spin the poll loop).
        executor: per-worker executor name (``repro worker --executor``),
            e.g. ``"batch"``.
    """

    name = "subprocess"

    def __init__(
        self,
        workers: Optional[int] = None,
        jobs: Optional[int] = None,
        python: Optional[str] = None,
        worker_args: Sequence[str] = (),
        max_retries: int = 2,
        poll_interval: float = 0.05,
        executor: Optional[str] = None,
        lanes: Optional[int] = None,
    ) -> None:
        if workers is None:
            workers = max(1, min(2, available_cores()))
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if poll_interval <= 0.0:
            raise ValueError(
                f"poll_interval must be positive (seconds between fleet "
                f"liveness polls), got {poll_interval}"
            )
        if executor is not None and executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of "
                f"{', '.join(EXECUTOR_NAMES)}"
            )
        self.workers = workers
        self.jobs = jobs
        self.python = python
        self.worker_args = tuple(worker_args)
        self.max_retries = max_retries
        self.poll_interval = poll_interval
        self.executor = executor
        if lanes is not None and lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.lanes = lanes

    def default_shard_count(self) -> int:
        return self.workers

    def worker_command(self, spec_path: str) -> List[str]:
        """The command line that executes one shard spec."""
        command = [
            self.python or sys.executable,
            "-m",
            "repro",
            "worker",
            "--spec",
            spec_path,
        ]
        if self.jobs is not None:
            command += ["--jobs", str(self.jobs)]
        if self.executor is not None:
            command += ["--executor", self.executor]
        if self.lanes is not None:
            command += ["--lanes", str(self.lanes)]
        command += list(self.worker_args)
        return command

    def run(
        self,
        plan: CampaignPlan,
        workdir: str,
        cache: Optional[CacheBackend] = None,
        progress: Optional[ProgressCallback] = None,
        log: Optional[LogCallback] = None,
    ) -> List[str]:
        cache_dir = cache.directory if cache is not None else None
        if cache is not None and not _cacheable(plan):
            cache_dir = None
        ml_pickle_name: Optional[str] = None
        if plan.ml_factory is not None:
            ml_pickle_name = f"ml-{plan.digest()[:16]}.pkl"
            try:
                payload = pickle.dumps(plan.ml_factory)
            except Exception as exc:
                raise SchedulerError(
                    "fleet backends ship the ml_factory to worker processes "
                    "by pickle, and this factory does not pickle "
                    f"({exc}); use a picklable factory such as "
                    "repro.ml.MitigationFactory"
                ) from exc
            with open(os.path.join(workdir, ml_pickle_name), "wb") as handle:
                handle.write(payload)

        slots: List[_WorkerSlot] = []
        done = 0
        for job in plan.jobs:
            output_path = shard_path(job, workdir)
            stem = job.file_name()[: -len(".jsonl")]
            spec_path = os.path.join(workdir, f"{stem}.spec.json")
            write_job_spec(
                job,
                spec_path,
                output=job.file_name(),
                cache_dir=cache_dir,
                ml_pickle=ml_pickle_name,
            )
            slot = _WorkerSlot(
                job=job,
                spec_path=spec_path,
                output_path=output_path,
                log_path=os.path.join(workdir, f"{stem}.log"),
            )
            if shard_complete(job, output_path):
                if log is not None:
                    log(f"shard {job.shard}: already complete, skipping")
                done += job.total
            else:
                slots.append(slot)
        if progress is not None:
            progress(done, plan.total)

        pending = deque(slots)
        running: Dict[subprocess.Popen, _WorkerSlot] = {}
        try:
            while pending or running:
                while pending and len(running) < self.workers:
                    slot = pending.popleft()
                    slot.attempts += 1
                    if log is not None:
                        log(
                            f"shard {slot.job.shard}: launching worker "
                            f"(attempt {slot.attempts})"
                        )
                    try:
                        with open(slot.log_path, "ab") as handle:
                            proc = subprocess.Popen(
                                self.worker_command(slot.spec_path),
                                stdout=handle,
                                stderr=subprocess.STDOUT,
                            )
                    except OSError as exc:
                        # A spawn failure (missing interpreter, fork limit)
                        # is a worker failure: same retry budget, same
                        # shard-identity in the final error.
                        if slot.attempts <= self.max_retries:
                            if log is not None:
                                log(
                                    f"shard {slot.job.shard}: worker failed "
                                    f"to launch ({exc}); retrying"
                                )
                            pending.append(slot)
                            continue
                        raise SchedulerError(
                            f"shard {slot.job.shard} worker failed after "
                            f"{slot.attempts} attempts (could not launch: "
                            f"{exc}); see {slot.log_path}"
                        ) from exc
                    running[proc] = slot
                finished = [p for p in running if p.poll() is not None]
                if not finished:
                    time.sleep(self.poll_interval)
                    continue
                for proc in finished:
                    slot = running.pop(proc)
                    if proc.returncode == 0 and shard_complete(
                        slot.job, slot.output_path
                    ):
                        done += slot.job.total
                        if progress is not None:
                            progress(done, plan.total)
                        if log is not None:
                            log(f"shard {slot.job.shard}: complete")
                    elif slot.attempts <= self.max_retries:
                        recovered = count_records(slot.output_path)
                        if log is not None:
                            log(
                                f"shard {slot.job.shard}: worker exited "
                                f"{proc.returncode}; retrying from the "
                                f"{recovered}-episode JSONL prefix"
                            )
                        pending.append(slot)
                    else:
                        raise SchedulerError(
                            f"shard {slot.job.shard} worker failed after "
                            f"{slot.attempts} attempts (last exit "
                            f"{proc.returncode}); see {slot.log_path}"
                        )
        finally:
            # Teardown must reap every worker it signals: a killed-but-
            # unreaped child stays a zombie for the life of this process,
            # and a worker that ignores SIGTERM would otherwise leak
            # entirely.  Terminate the whole fleet first (this also runs
            # when one shard exhausts its retry budget and raises above),
            # then wait; on a hung worker escalate to SIGKILL and reap
            # that too.
            for proc in running:
                proc.terminate()
            for proc in running:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        return [shard_path(job, workdir) for job in plan.jobs]


class SSHBackend(SubprocessFleetBackend):
    """Fleet workers shelled through a configurable command template.

    The remote-execution stub: the worker command is identical to the
    subprocess fleet's, wrapped by ``command_template`` and executed via
    a *local* ``sh -c`` — e.g. ``"ssh build-host 'cd /shared/repo &&
    {command}'"`` (quote the remote part: an unquoted ``&&`` would split
    the pipeline on this machine instead of the remote one).  It assumes
    the work directory and cache live on a filesystem every host shares
    (spec files store workdir-relative paths, so a remounted prefix is
    fine) and that ``repro`` is importable remotely.
    ``command_template`` defaults to the ``REPRO_SSH_COMMAND``
    environment variable.
    """

    name = "ssh"

    def __init__(
        self,
        workers: Optional[int] = None,
        command_template: Optional[str] = None,
        **kwargs,
    ) -> None:
        super().__init__(workers=workers, **kwargs)
        # Transport configuration only — never part of any digest.
        template = command_template or os.environ.get(  # repro-lint: disable=env-read-in-canonical
            "REPRO_SSH_COMMAND"
        )
        if not template:
            raise ValueError(
                "the ssh backend needs a command template (e.g. "
                "'ssh build-host {command}'); pass command_template= or set "
                "the REPRO_SSH_COMMAND environment variable"
            )
        if "{command}" not in template:
            raise ValueError(
                "ssh command template must contain a '{command}' placeholder "
                f"for the worker command, got {template!r}"
            )
        self.command_template = template

    def worker_command(self, spec_path: str) -> List[str]:
        inner = super().worker_command(spec_path)
        wrapped = self.command_template.format(command=shlex.join(inner))
        return ["/bin/sh", "-c", wrapped]


# --------------------------------------------------------------------- #
# The backend registry (the ``sim/families.py`` idiom)
# --------------------------------------------------------------------- #

_BACKENDS: Dict[str, type] = {}


def register_backend(backend_cls: type, replace: bool = False) -> type:
    """Register a :class:`WorkerBackend` class under its ``name``.

    Raises:
        ValueError: missing name, or the name is already registered
            (unless ``replace``).
    """
    name = getattr(backend_cls, "name", "")
    if not name:
        raise ValueError(
            f"backend class {backend_cls!r} must set a non-empty 'name'"
        )
    if not replace and name in _BACKENDS:
        raise ValueError(
            f"worker backend {name!r} is already registered; pass "
            "replace=True to override it"
        )
    _BACKENDS[name] = backend_cls
    return backend_cls


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (test harness use)."""
    _BACKENDS.pop(name, None)


def get_backend(name: str) -> type:
    """The registered backend class for ``name``.

    Raises:
        UnknownBackendError: no registered backend claims the name; the
            message lists every registered backend.
    """
    backend = _BACKENDS.get(name)
    if backend is None:
        raise UnknownBackendError(name, registered_backends())
    return backend


def registered_backends() -> Tuple[str, ...]:
    """Every registered backend name, in registration order."""
    return tuple(_BACKENDS)


def make_backend(name: str, **kwargs) -> WorkerBackend:
    """Instantiate a registered backend by name.

    ``kwargs`` with value None are dropped so callers can forward
    optional CLI flags verbatim and let each backend apply its defaults.
    """
    backend_cls = get_backend(name)
    return backend_cls(**{k: v for k, v in kwargs.items() if v is not None})


register_backend(InProcessBackend)
register_backend(SubprocessFleetBackend)
register_backend(SSHBackend)


# --------------------------------------------------------------------- #
# Collect
# --------------------------------------------------------------------- #


def collect_shards(
    plan: CampaignPlan,
    paths: Sequence[str],
    cache: Optional[CacheBackend] = None,
) -> CampaignResult:
    """Validate and merge dispatched shard files into the full campaign.

    Applies the ``repro merge`` invariants (strict loads — no partial
    shards, no overlapping episodes, no mixed intervention labels) plus
    the plan's own identity: every sidecar must name its job's digest and
    every collected record must match the episode the plan enumerates at
    its position.  On success the full campaign is written through
    ``cache`` under the plan digest, which is what lets a repeat dispatch
    (and the incremental report pipeline) skip execution entirely.

    Raises:
        SchedulerError: any validation failure, wrapped with the shard
            identity needed to act on it.
    """
    if len(paths) != len(plan.jobs):
        raise SchedulerError(
            f"collect expected {len(plan.jobs)} shard files, got {len(paths)}"
        )
    for job, path in zip(plan.jobs, paths):
        recorded = read_digest_sidecar(path)
        if recorded is not None and recorded != job.digest():
            raise SchedulerError(
                f"{path}: sidecar records digest {recorded[:16]}… but the "
                f"plan's shard {job.shard} is {job.digest()[:16]}…; the file "
                "belongs to a different campaign"
            )
    try:
        merged = merge_shards(paths)
    except (ValueError, OSError) as exc:
        raise SchedulerError(f"shard collection failed: {exc}") from exc
    label = plan.interventions.label()
    episodes = list(plan.episodes)
    if len(merged.results) != len(episodes):
        raise SchedulerError(
            f"collected {len(merged.results)} episodes but the plan "
            f"enumerates {len(episodes)}; a shard file is incomplete or "
            "from another campaign"
        )
    try:
        _validate_resume_prefix(
            merged.results, episodes, label, "<collected shards>"
        )
    except ValueError as exc:
        raise SchedulerError(f"shard collection failed: {exc}") from exc
    if cache is not None and _cacheable(plan):
        cache.put(plan.digest(), merged.results)
    return CampaignResult(intervention=label, results=merged.results)


# --------------------------------------------------------------------- #
# The pipeline façade
# --------------------------------------------------------------------- #


def dispatch_campaign(
    campaign: Union[CampaignSpec, Sequence[EpisodeSpec]],
    interventions: InterventionConfig,
    backend: Union[str, WorkerBackend] = "in-process",
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    workdir: Optional[PathLike] = None,
    ml_factory: Optional[Callable[[], object]] = None,
    cache: Union[CacheBackend, None, bool] = None,
    jobs: Optional[int] = None,
    executor: Optional[str] = None,
    lanes: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    log: Optional[LogCallback] = None,
    **platform_kwargs,
) -> CampaignResult:
    """Plan, dispatch and collect one campaign over a worker backend.

    The distributed counterpart of ``run_campaign``, with the same
    bit-identical guarantee: for any backend and shard count, the
    returned results (and the merged shard files) match the serial run
    byte for byte.

    Args:
        campaign: a :class:`CampaignSpec` or pre-enumerated episode list.
        interventions: the safety configuration under test.
        backend: a registered backend name (``in-process``,
            ``subprocess``, ``ssh``) or a :class:`WorkerBackend` instance.
        workers: worker count forwarded to a by-name backend.
        shards: how many shard jobs to plan (default: the backend's
            ``default_shard_count`` — one per worker for fleets).
        workdir: where shard JSONLs, spec files and worker logs live.
            Reusing a workdir is what enables crash recovery (complete
            shards are skipped, partial ones resume); ``None`` uses a
            private temporary directory, removed after collection.
        ml_factory: per-episode ML controller factory (fleet backends
            require it picklable).
        cache: consulted for the full campaign before any dispatch (a
            hit executes zero episodes and spawns zero workers) and
            written through after collection; shard-level entries land
            under each shard's own digest.  ``None``/``True`` defer to
            ``REPRO_CACHE_DIR``; ``False`` disables.
        jobs: per-worker executor parallelism forwarded to a by-name
            backend.
        executor: per-worker executor name (e.g. ``"batch"``) forwarded
            to a by-name backend.
        lanes: per-worker peak lockstep lane count for the batch executor,
            forwarded to a by-name backend.
        progress: ``(done episodes, total)`` callback; fleet backends
            report at shard granularity.
        log: line sink for dispatch narration (worker launches, retries).
        **platform_kwargs: forwarded to every episode's platform.

    Returns:
        The full-campaign :class:`CampaignResult`, in enumeration order.
    """
    if isinstance(backend, str):
        backend = make_backend(
            backend, workers=workers, jobs=jobs, executor=executor, lanes=lanes
        )
    plan = CampaignPlan.build(
        campaign,
        interventions,
        shards=shards if shards is not None else backend.default_shard_count(),
        ml_factory=ml_factory,
        **platform_kwargs,
    )
    cache = resolve_cache(cache)
    label = interventions.label()
    if cache is not None and _cacheable(plan):
        hit = cache.get(plan.digest())
        if (
            hit is not None
            and len(hit) == plan.total
            and all(r.intervention == label for r in hit)
        ):
            if log is not None:
                log(f"campaign {plan.digest()[:16]}…: cache hit, zero episodes")
            if progress is not None:
                progress(plan.total, plan.total)
            return CampaignResult(intervention=label, results=hit)

    tmp_workdir: Optional[str] = None
    if workdir is None:
        tmp_workdir = tempfile.mkdtemp(prefix="repro-dispatch-")
        workdir = tmp_workdir
    else:
        workdir = os.fspath(workdir)
        os.makedirs(workdir, exist_ok=True)
    try:
        paths = backend.run(
            plan, workdir, cache=cache, progress=progress, log=log
        )
        return collect_shards(plan, paths, cache=cache)
    finally:
        if tmp_workdir is not None:
            shutil.rmtree(tmp_workdir, ignore_errors=True)
