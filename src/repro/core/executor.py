"""Pluggable campaign execution engine.

Campaign episodes are embarrassingly parallel *by construction*: every
episode seed is derived order-independently from the campaign seed (see
:func:`repro.attacks.campaign.enumerate_campaign`) and a
:class:`~repro.core.platform.SimulationPlatform` owns all of its state, so
episodes share nothing at run time.  This module exploits that with two
interchangeable backends behind one abstraction:

* :class:`SerialExecutor` — runs episodes in-process, in order.  Zero
  overhead; the reference backend.
* :class:`ParallelExecutor` — fans episode *chunks* out to a
  ``concurrent.futures.ProcessPoolExecutor`` and reassembles results in
  submission order, so the returned list is **bit-identical** to the
  serial backend's for the same episode list.
* :class:`BatchExecutor` — steps all episodes in lockstep through the
  vectorized batch engine in one process; bit-identical results.
* :class:`BatchParallelExecutor` — the batch × jobs hybrid
  (``--executor batch --jobs N``): contiguous lane shards across worker
  processes, the batch engine inside each, ordered reassembly; composes
  the vectorization speedup with multi-core scaling, still bit-identical.

Both backends report progress through a thread-safe ``(done, total)``
callback (see :class:`ProgressTracker`), counted per *episode* even when
dispatch happens per chunk.

Episode payloads cross process boundaries, which is why
:class:`~repro.core.metrics.EpisodeResult` is fully picklable and carries
``to_dict``/``from_dict`` serialization.  When a payload is *not*
picklable (e.g. a lambda ``ml_factory``), :class:`ParallelExecutor`
degrades to in-process execution with a ``RuntimeWarning`` rather than
failing mid-campaign — use the picklable
:class:`repro.ml.mitigation.MitigationFactory` (which carries the trained
weights) instead of a lambda so ML campaigns dispatch like the rest.

The worker-count default honours the ``REPRO_JOBS`` environment variable
(see :func:`default_jobs`), so campaigns parallelise without touching call
sites: ``REPRO_JOBS=8 python -m repro table6``.
"""

from __future__ import annotations

import abc
import os
import pickle
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import as_completed
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.attacks.campaign import EpisodeSpec
from repro.core.metrics import EpisodeResult
from repro.safety.arbitration import InterventionConfig

ProgressCallback = Callable[[int, int], None]


@dataclass(frozen=True)
class EpisodeTask:
    """One unit of campaign work: an episode plus everything to run it.

    Attributes:
        spec: the episode to simulate.
        interventions: the safety configuration under test.
        ml_factory: builds a fresh ML controller for this episode (None
            when ``interventions.ml`` is False).  A factory rather than an
            instance so controller state can never leak across episodes —
            and so each worker process builds its own controller.
        platform_kwargs: extra :class:`SimulationPlatform` keyword
            arguments (``max_steps``, ``dt``, ...).
    """

    spec: EpisodeSpec
    interventions: InterventionConfig
    ml_factory: Optional[Callable[[], object]] = None
    platform_kwargs: Tuple[Tuple[str, object], ...] = ()

    @staticmethod
    def make(
        spec: EpisodeSpec,
        interventions: InterventionConfig,
        ml_factory: Optional[Callable[[], object]] = None,
        **platform_kwargs,
    ) -> "EpisodeTask":
        """Build a task, normalising kwargs into a hashable/picklable form."""
        return EpisodeTask(
            spec=spec,
            interventions=interventions,
            ml_factory=ml_factory,
            platform_kwargs=tuple(sorted(platform_kwargs.items())),
        )


@dataclass
class PhaseProfile:
    """Accumulated wall-clock per simulation pipeline phase.

    The three phases partition one step of the platform loop: ``control``
    (perception → arbitration → actuation), ``dynamics`` (the physics
    integrate), and ``post`` (the post-step tail: metric accumulation,
    hazard detection, episode retirement).  ``steps`` counts lane-steps,
    so ``total_s / steps`` is the mean wall-clock per episode-step under
    either executor.  Profiling only reads the clock around existing
    calls — it never changes the call sequence, so profiled runs stay
    bit-identical to unprofiled ones.
    """

    control_s: float = 0.0
    dynamics_s: float = 0.0
    post_s: float = 0.0
    steps: int = 0

    @property
    def total_s(self) -> float:
        """Wall-clock across all three phases [s]."""
        return self.control_s + self.dynamics_s + self.post_s

    def as_dict(self) -> Dict[str, float]:
        """JSON-safe record (bench JSON / CLI reporting)."""
        return {
            "control_s": self.control_s,
            "dynamics_s": self.dynamics_s,
            "post_s": self.post_s,
            "steps": self.steps,
        }


def execute_task(task: EpisodeTask) -> EpisodeResult:
    """Run one :class:`EpisodeTask` to completion (the worker entry point).

    Module-level (not a closure or method) so it is picklable by
    ``ProcessPoolExecutor``; imports the platform lazily to keep worker
    start-up cheap under spawn-based start methods.
    """
    from repro.core.platform import SimulationPlatform

    controller = task.ml_factory() if task.ml_factory is not None else None
    platform = SimulationPlatform(
        task.spec,
        task.interventions,
        ml_controller=controller,
        **dict(task.platform_kwargs),
    )
    return platform.run()


def execute_task_profiled(task: EpisodeTask, profile: PhaseProfile) -> EpisodeResult:
    """:func:`execute_task` with per-phase wall-clock accumulation.

    Replays ``SimulationPlatform.run`` phase by phase with a counter read
    between phases; the call sequence (and therefore the result) is
    identical to the unprofiled path.
    """
    from repro.core.platform import SimulationPlatform

    controller = task.ml_factory() if task.ml_factory is not None else None
    platform = SimulationPlatform(
        task.spec,
        task.interventions,
        ml_controller=controller,
        **dict(task.platform_kwargs),
    )
    result = platform._begin_episode()
    for step_index in range(platform.max_steps):
        t0 = perf_counter()
        platform._control_phase(step_index, result)
        t1 = perf_counter()
        platform.world.step(platform.dt)
        t2 = perf_counter()
        finished = platform._after_dynamics(step_index, result)
        t3 = perf_counter()
        profile.control_s += t1 - t0
        profile.dynamics_s += t2 - t1
        profile.post_s += t3 - t2
        profile.steps += 1
        if finished:
            break
    platform._finish_episode(result)
    return result


def _execute_chunk(tasks: Sequence[EpisodeTask]) -> List[EpisodeResult]:
    """Worker-side: run one chunk of tasks in order."""
    return [execute_task(task) for task in tasks]


def _execute_batch_chunk(
    tasks: Sequence[EpisodeTask], lanes: Optional[int]
) -> List[EpisodeResult]:
    """Worker-side: run one chunk of tasks through the batch engine."""
    return BatchExecutor(lanes=lanes).run(tasks)


class ProgressTracker:
    """Thread-safe ``(done, total)`` progress fan-in.

    Chunked parallel dispatch completes out of order and (depending on the
    executor implementation) may report from multiple threads; this
    serialises the counter updates and the user callback behind one lock so
    ``done`` is strictly monotonic.  ``done`` counts *episodes* but advances
    by whole chunks under parallel dispatch, so consumers must not assume
    unit increments — only that each reported value exceeds the last and
    the final call reports ``(total, total)``.
    """

    def __init__(self, total: int, callback: Optional[ProgressCallback]) -> None:
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.total = total
        self.done = 0
        self._callback = callback
        self._lock = threading.Lock()

    def advance(self, count: int = 1) -> None:
        """Record ``count`` finished episodes and notify the callback.

        Raises:
            ValueError: if ``count`` is not positive — a zero or negative
                advance is always a caller bug (an empty chunk result
                would silently stall the ``(done, total)`` contract).
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        with self._lock:
            self.done += count
            if self._callback is not None:
                self._callback(self.done, self.total)


class CampaignExecutor(abc.ABC):
    """Maps :class:`EpisodeTask`s to :class:`EpisodeResult`s, in order.

    Implementations must return results in task order and must be
    deterministic: the same task list always yields the same result list,
    regardless of scheduling.
    """

    @abc.abstractmethod
    def run(
        self,
        tasks: Sequence[EpisodeTask],
        progress: Optional[ProgressCallback] = None,
    ) -> List[EpisodeResult]:
        """Execute every task and return results in task order."""


class SerialExecutor(CampaignExecutor):
    """In-process, in-order execution (the reference backend).

    Args:
        profile: optional :class:`PhaseProfile` to accumulate per-phase
            step timing into (``repro campaign --profile``); results are
            unaffected.
    """

    #: Class-level default so subclasses with bare ``__init__``
    #: overrides (test doubles predating profiling) stay unprofiled.
    profile: Optional[PhaseProfile] = None

    def __init__(self, profile: Optional[PhaseProfile] = None) -> None:
        self.profile = profile

    def run(
        self,
        tasks: Sequence[EpisodeTask],
        progress: Optional[ProgressCallback] = None,
    ) -> List[EpisodeResult]:
        tracker = ProgressTracker(len(tasks), progress)
        results: List[EpisodeResult] = []
        for task in tasks:
            if self.profile is not None:
                results.append(execute_task_profiled(task, self.profile))
            else:
                results.append(execute_task(task))
            tracker.advance()
        return results


class ParallelExecutor(CampaignExecutor):
    """Process-pool execution with chunked dispatch and ordered reassembly.

    Args:
        jobs: worker process count (>= 1).  ``jobs=1`` short-circuits to
            in-process execution — no pool overhead, identical results.
        chunk_size: episodes per dispatched chunk.  ``None`` picks a size
            that yields ~4 chunks per worker, balancing dispatch overhead
            against load-balancing granularity.

    Results are reassembled in submission order, so ``run`` is
    bit-identical to :class:`SerialExecutor` on the same task list.
    """

    #: Upper bound on the auto-chosen chunk size: chunks larger than this
    #: starve the pool tail even on very large campaigns.
    MAX_AUTO_CHUNK = 16

    def __init__(self, jobs: int, chunk_size: Optional[int] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.chunk_size = chunk_size

    def _auto_chunk_size(self, total: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        per_worker = max(1, total // (self.jobs * 4))
        return min(per_worker, self.MAX_AUTO_CHUNK)

    @staticmethod
    def _dispatchable(tasks: Sequence[EpisodeTask]) -> bool:
        """True when every payload survives the process boundary.

        Probing only ``tasks[0]`` is not enough: campaigns mix arms, and a
        non-picklable payload (e.g. a lambda ``ml_factory`` on the ML arm)
        can sit anywhere in the list.  The expensive part of a task pickle
        is the ``ml_factory`` payload, so one representative per distinct
        factory object is probed instead of all N tasks.
        """
        seen: set = set()
        for task in tasks:
            marker = id(task.ml_factory) if task.ml_factory is not None else None
            if marker in seen:
                continue
            seen.add(marker)
            try:
                pickle.dumps(task)
            except Exception:
                return False
        return True

    def run(
        self,
        tasks: Sequence[EpisodeTask],
        progress: Optional[ProgressCallback] = None,
    ) -> List[EpisodeResult]:
        if not tasks:
            return []
        if self.jobs == 1 or len(tasks) == 1:
            # One worker or one task: a pool adds spawn + pickling overhead
            # with zero parallelism to gain.
            return SerialExecutor().run(tasks, progress)
        if not self._dispatchable(tasks):
            warnings.warn(
                "campaign payload is not picklable (e.g. a lambda ml_factory); "
                "falling back to in-process execution — use a module-level "
                "factory such as repro.ml.MitigationFactory to enable "
                "parallel dispatch",
                RuntimeWarning,
                stacklevel=2,
            )
            return SerialExecutor().run(tasks, progress)

        tracker = ProgressTracker(len(tasks), progress)
        size = self._auto_chunk_size(len(tasks))
        chunks = [list(tasks[i : i + size]) for i in range(0, len(tasks), size)]
        ordered: Dict[int, List[EpisodeResult]] = {}
        with _ProcessPool(max_workers=min(self.jobs, len(chunks))) as pool:
            futures = {
                pool.submit(_execute_chunk, chunk): index
                for index, chunk in enumerate(chunks)
            }
            for future in as_completed(futures):
                index = futures[future]
                chunk_results = future.result()
                ordered[index] = chunk_results
                tracker.advance(len(chunk_results))
        results: List[EpisodeResult] = []
        for index in range(len(chunks)):
            results.extend(ordered[index])
        return results


class BatchExecutor(CampaignExecutor):
    """Lockstep vectorized execution: N episodes advance together.

    One process owns all episodes and steps them in lockstep through
    :class:`repro.sim.batch_state.BatchDynamics`, which integrates every
    lane's world with NumPy-vectorized float64 math while the
    perception/control/safety stacks keep running per lane.  Results are
    **bit-identical** to :class:`SerialExecutor` (the vectorized dynamics
    replicate the scalar arithmetic exactly; see the batch_state module
    docstring), so the two backends are interchangeable — batch trades
    per-episode Python interpreter overhead for array dispatch, which pays
    off on campaign-sized episode counts.

    Episodes can only share an integrate when they share a physics period,
    so tasks are grouped by their ``dt``; episodes finish independently
    (accident or ``max_steps``) and drop out of the lockstep as they do.

    Args:
        lanes: cap on episodes stepped together (``None`` = one batch per
            ``dt`` group).  Smaller caps bound memory; larger caps
            amortise NumPy dispatch overhead better.
        profile: optional :class:`PhaseProfile` to accumulate per-phase
            step timing into (``steps`` counts lane-steps); results are
            unaffected.
    """

    def __init__(
        self,
        lanes: Optional[int] = None,
        profile: Optional[PhaseProfile] = None,
    ) -> None:
        if lanes is not None and lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.lanes = lanes
        self.profile = profile
        self.jobs = 1

    def run(
        self,
        tasks: Sequence[EpisodeTask],
        progress: Optional[ProgressCallback] = None,
    ) -> List[EpisodeResult]:
        if not tasks:
            return []
        tracker = ProgressTracker(len(tasks), progress)
        results: List[Optional[EpisodeResult]] = [None] * len(tasks)
        groups: Dict[object, List[int]] = {}
        for index, task in enumerate(tasks):
            dt = dict(task.platform_kwargs).get("dt", 0.01)
            groups.setdefault(dt, []).append(index)
        for indices in groups.values():
            width = self.lanes or len(indices)
            for i in range(0, len(indices), width):
                self._run_batch(tasks, indices[i : i + width], results, tracker)
        return results  # type: ignore[return-value]

    def _run_batch(
        self,
        tasks: Sequence[EpisodeTask],
        indices: Sequence[int],
        results: List[Optional[EpisodeResult]],
        tracker: ProgressTracker,
    ) -> None:
        """Run one same-``dt`` group of episodes in lockstep."""
        from repro.core.platform import SimulationPlatform
        from repro.sim.batch_control import BatchControlStack
        from repro.sim.batch_hazards import BatchHazardMonitor
        from repro.sim.batch_state import BatchDynamics

        platforms = []
        for index in indices:
            task = tasks[index]
            controller = task.ml_factory() if task.ml_factory is not None else None
            platforms.append(
                SimulationPlatform(
                    task.spec,
                    task.interventions,
                    ml_controller=controller,
                    **dict(task.platform_kwargs),
                )
            )
        from repro.safety.aebs import AebsConfig

        dynamics = BatchDynamics(
            [platform.world for platform in platforms],
            curvature_lookaheads=[
                platform.perception.params.curvature_lookahead
                for platform in platforms
            ],
            lead_max_ranges=[platform.sensor.max_range for platform in platforms],
            radar_leads=any(
                platform.interventions.aeb is AebsConfig.INDEPENDENT
                for platform in platforms
            ),
            human_leads=any(platform.driver is not None for platform in platforms),
        )
        stack = BatchControlStack(platforms, dynamics)
        hazards = BatchHazardMonitor(
            [platform.hazards for platform in platforms], dynamics
        )
        profile = self.profile
        dt = platforms[0].dt
        episodes = [platform._begin_episode() for platform in platforms]
        steps = [0] * len(platforms)
        active = list(range(len(platforms)))
        # The control phase runs before the first physics step, so the
        # step-0 world-query caches must be primed from the initial state.
        dynamics.prime(active)
        while active:
            t0 = perf_counter() if profile is not None else 0.0
            vector_lanes = [lane for lane in active if lane in stack.vector_set]
            stack.step_control(vector_lanes)
            for lane in active:
                if lane not in stack.vector_set:
                    platforms[lane]._control_phase(steps[lane], episodes[lane])
            if profile is not None:
                t1 = perf_counter()
                profile.control_s += t1 - t0
            dynamics.step(active, dt)
            if profile is not None:
                t2 = perf_counter()
                profile.dynamics_s += t2 - t1
                profile.steps += len(active)
            stack.accumulate(vector_lanes)
            # Masked hazard screen: only lanes where the scalar monitor
            # could mark or latch something this step run it; the mask is
            # exact, so quiet lanes skip the per-lane update entirely.
            haz_flags = hazards.screen(active)
            remaining = []
            for pos, lane in enumerate(active):
                platform = platforms[lane]
                if lane in stack.vector_set:
                    # The intervention recorders already ran vectorized in
                    # step_control; only mask-flagged hazard detection
                    # remains per lane.
                    if haz_flags[pos]:
                        finished = platform._close_step(
                            steps[lane], episodes[lane]
                        )
                        hazards.refresh(lane)
                    else:
                        finished = False
                else:
                    finished = platform._after_dynamics(steps[lane], episodes[lane])
                steps[lane] += 1
                if finished or steps[lane] >= platform.max_steps:
                    if lane in stack.vector_set:
                        # Quiet steps skip the per-step counter write, so
                        # stamp the final step count before retirement.
                        episodes[lane].steps = steps[lane]
                        stack.retire(lane, episodes[lane])
                    platform._finish_episode(episodes[lane])
                    results[indices[lane]] = episodes[lane]
                    tracker.advance()
                else:
                    remaining.append(lane)
            active = remaining
            if profile is not None:
                profile.post_s += perf_counter() - t2


class BatchParallelExecutor(CampaignExecutor):
    """Batch × jobs hybrid: lane shards across workers, batch inside each.

    Composes the two previously mutually-exclusive speedups: tasks are
    split into ``jobs`` contiguous chunks, each worker process runs the
    vectorized :class:`BatchExecutor` on its chunk, and results are
    reassembled in submission order.  Episodes are independent and the
    batch engine is bit-identical to serial on *any* task subset, so the
    chunking rule — contiguous chunks, ordered reassembly — keeps the
    returned list byte-identical to :class:`SerialExecutor` regardless of
    worker count or chunk boundaries.

    Unlike :class:`ParallelExecutor` (many small chunks for load
    balancing), chunks here default to one *wide* chunk per worker: the
    batch engine's per-step array dispatch amortises better the more
    lanes it steps together, and a campaign's episodes are near-uniform
    in cost.

    Args:
        jobs: worker process count (>= 1).  ``jobs=1`` short-circuits to
            an in-process :class:`BatchExecutor` — no pool overhead,
            identical results.
        lanes: per-worker lockstep lane cap, forwarded to each worker's
            :class:`BatchExecutor` (``None`` = uncapped).
        chunk_size: episodes per dispatched chunk (``None`` = one chunk
            per worker).  Exposed for tests and tail-latency tuning;
            results do not depend on it.
    """

    def __init__(
        self,
        jobs: int,
        lanes: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if lanes is not None and lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.lanes = lanes
        self.chunk_size = chunk_size

    def run(
        self,
        tasks: Sequence[EpisodeTask],
        progress: Optional[ProgressCallback] = None,
    ) -> List[EpisodeResult]:
        if not tasks:
            return []
        if self.jobs == 1 or len(tasks) == 1:
            return BatchExecutor(lanes=self.lanes).run(tasks, progress)
        if not ParallelExecutor._dispatchable(tasks):
            warnings.warn(
                "campaign payload is not picklable (e.g. a lambda ml_factory); "
                "falling back to in-process batch execution — use a "
                "module-level factory such as repro.ml.MitigationFactory to "
                "enable parallel dispatch",
                RuntimeWarning,
                stacklevel=2,
            )
            return BatchExecutor(lanes=self.lanes).run(tasks, progress)

        tracker = ProgressTracker(len(tasks), progress)
        size = self.chunk_size
        if size is None:
            size = -(-len(tasks) // self.jobs)  # ceil: one chunk per worker
        chunks = [list(tasks[i : i + size]) for i in range(0, len(tasks), size)]
        ordered: Dict[int, List[EpisodeResult]] = {}
        with _ProcessPool(max_workers=min(self.jobs, len(chunks))) as pool:
            futures = {
                pool.submit(_execute_batch_chunk, chunk, self.lanes): index
                for index, chunk in enumerate(chunks)
            }
            for future in as_completed(futures):
                index = futures[future]
                chunk_results = future.result()
                ordered[index] = chunk_results
                tracker.advance(len(chunk_results))
        results: List[EpisodeResult] = []
        for index in range(len(chunks)):
            results.extend(ordered[index])
        return results


def available_cores() -> int:
    """CPUs actually usable by this process (affinity/cgroup aware).

    The sizing input for worker fleets and parallel benchmarks:
    ``os.cpu_count()`` reports the machine, not what a container or
    ``taskset`` actually grants this process.
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def default_jobs() -> int:
    """Worker-count default: the ``REPRO_JOBS`` environment variable, or 1.

    Raises:
        ValueError: on a malformed or non-positive ``REPRO_JOBS``.
    """
    raw = os.environ.get("REPRO_JOBS")
    if raw is None:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be a positive integer (worker process count), "
            f"got {raw!r}"
        ) from None
    if jobs < 1:
        raise ValueError(
            f"REPRO_JOBS must be a positive integer (worker process count), "
            f"got {jobs}"
        )
    return jobs


def default_batch_lanes() -> Optional[int]:
    """Batch-lane default: the ``REPRO_BATCH_LANES`` environment variable.

    ``None`` (unset) means "one batch per ``dt`` group" — no cap.

    Raises:
        ValueError: on a malformed or non-positive ``REPRO_BATCH_LANES``.
    """
    raw = os.environ.get("REPRO_BATCH_LANES")
    if raw is None:
        return None
    try:
        lanes = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_BATCH_LANES must be a positive integer (lockstep lane "
            f"cap), got {raw!r}"
        ) from None
    if lanes < 1:
        raise ValueError(
            f"REPRO_BATCH_LANES must be a positive integer (lockstep lane "
            f"cap), got {lanes}"
        )
    return lanes


def make_executor(jobs: Optional[int] = None) -> CampaignExecutor:
    """Build the executor for a requested worker count.

    Args:
        jobs: worker processes; ``None`` defers to :func:`default_jobs`
            (the ``REPRO_JOBS`` environment variable, then 1).

    Returns:
        :class:`SerialExecutor` for one worker, else a
        :class:`ParallelExecutor`.
    """
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs)


#: Executor names accepted wherever an executor can be chosen by string
#: (``run_campaign(..., executor="batch")``, ``--executor`` on the CLI,
#: fleet worker command lines).
EXECUTOR_NAMES: Tuple[str, ...] = ("serial", "parallel", "batch")


def resolve_executor(
    executor: "str | CampaignExecutor | None",
    jobs: Optional[int] = None,
    lanes: Optional[int] = None,
    profile: Optional[PhaseProfile] = None,
) -> CampaignExecutor:
    """Resolve an executor argument (name, instance or ``None``).

    Args:
        executor: a :data:`EXECUTOR_NAMES` name, a ready
            :class:`CampaignExecutor` instance (returned unchanged), or
            ``None`` to defer to :func:`make_executor`.
        jobs: worker count for the ``None``/``"parallel"``/``"batch"``
            cases; ``None`` defers to :func:`default_jobs` (the
            ``REPRO_JOBS`` environment variable, then 1).
            ``executor="batch"`` with more than one worker resolves to
            the :class:`BatchParallelExecutor` hybrid (lane shards across
            workers, batch engine inside each, bit-identical results).
        lanes: lockstep lane cap for the ``"batch"`` case (per worker
            under the hybrid); ``None`` defers to
            :func:`default_batch_lanes` (the ``REPRO_BATCH_LANES``
            environment variable, then uncapped).
        profile: a :class:`PhaseProfile` to accumulate per-phase timing
            into.  Only the in-process backends can time the step loop:
            resolving to the parallel executor or the batch×jobs hybrid
            with a profile raises.

    Raises:
        ValueError: on an unknown executor name, or on ``profile`` with
            a multi-process backend.
    """
    if executor is None:
        if profile is None:
            return make_executor(jobs)
        executor = (
            "parallel" if (jobs if jobs is not None else default_jobs()) > 1
            else "serial"
        )
    if isinstance(executor, str):
        if executor == "serial":
            return SerialExecutor(profile=profile)
        if executor == "parallel":
            if profile is not None:
                raise ValueError(
                    "per-phase profiling times the step loop in-process; "
                    "the parallel executor runs episodes in worker "
                    "processes — use the serial or batch executor"
                )
            return ParallelExecutor(jobs=jobs if jobs is not None else default_jobs())
        if executor == "batch":
            batch_jobs = jobs if jobs is not None else default_jobs()
            batch_lanes = lanes if lanes is not None else default_batch_lanes()
            if batch_jobs > 1:
                if profile is not None:
                    raise ValueError(
                        "--profile times the step loop in one process, but "
                        "--jobs > 1 shards the batch executor across worker "
                        "processes — drop --profile or run with --jobs 1"
                    )
                return BatchParallelExecutor(jobs=batch_jobs, lanes=batch_lanes)
            return BatchExecutor(lanes=batch_lanes, profile=profile)
        raise ValueError(
            f"unknown executor {executor!r}; expected one of "
            f"{', '.join(EXECUTOR_NAMES)}"
        )
    return executor
