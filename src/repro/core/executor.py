"""Pluggable campaign execution engine.

Campaign episodes are embarrassingly parallel *by construction*: every
episode seed is derived order-independently from the campaign seed (see
:func:`repro.attacks.campaign.enumerate_campaign`) and a
:class:`~repro.core.platform.SimulationPlatform` owns all of its state, so
episodes share nothing at run time.  This module exploits that with two
interchangeable backends behind one abstraction:

* :class:`SerialExecutor` — runs episodes in-process, in order.  Zero
  overhead; the reference backend.
* :class:`ParallelExecutor` — fans episode *chunks* out to a
  ``concurrent.futures.ProcessPoolExecutor`` and reassembles results in
  submission order, so the returned list is **bit-identical** to the
  serial backend's for the same episode list.

Both backends report progress through a thread-safe ``(done, total)``
callback (see :class:`ProgressTracker`), counted per *episode* even when
dispatch happens per chunk.

Episode payloads cross process boundaries, which is why
:class:`~repro.core.metrics.EpisodeResult` is fully picklable and carries
``to_dict``/``from_dict`` serialization.  When a payload is *not*
picklable (e.g. a lambda ``ml_factory``), :class:`ParallelExecutor`
degrades to in-process execution with a ``RuntimeWarning`` rather than
failing mid-campaign — use the picklable
:class:`repro.ml.mitigation.MitigationFactory` (which carries the trained
weights) instead of a lambda so ML campaigns dispatch like the rest.

The worker-count default honours the ``REPRO_JOBS`` environment variable
(see :func:`default_jobs`), so campaigns parallelise without touching call
sites: ``REPRO_JOBS=8 python -m repro table6``.
"""

from __future__ import annotations

import abc
import os
import pickle
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.attacks.campaign import EpisodeSpec
from repro.core.metrics import EpisodeResult
from repro.safety.arbitration import InterventionConfig

ProgressCallback = Callable[[int, int], None]


@dataclass(frozen=True)
class EpisodeTask:
    """One unit of campaign work: an episode plus everything to run it.

    Attributes:
        spec: the episode to simulate.
        interventions: the safety configuration under test.
        ml_factory: builds a fresh ML controller for this episode (None
            when ``interventions.ml`` is False).  A factory rather than an
            instance so controller state can never leak across episodes —
            and so each worker process builds its own controller.
        platform_kwargs: extra :class:`SimulationPlatform` keyword
            arguments (``max_steps``, ``dt``, ...).
    """

    spec: EpisodeSpec
    interventions: InterventionConfig
    ml_factory: Optional[Callable[[], object]] = None
    platform_kwargs: Tuple[Tuple[str, object], ...] = ()

    @staticmethod
    def make(
        spec: EpisodeSpec,
        interventions: InterventionConfig,
        ml_factory: Optional[Callable[[], object]] = None,
        **platform_kwargs,
    ) -> "EpisodeTask":
        """Build a task, normalising kwargs into a hashable/picklable form."""
        return EpisodeTask(
            spec=spec,
            interventions=interventions,
            ml_factory=ml_factory,
            platform_kwargs=tuple(sorted(platform_kwargs.items())),
        )


def execute_task(task: EpisodeTask) -> EpisodeResult:
    """Run one :class:`EpisodeTask` to completion (the worker entry point).

    Module-level (not a closure or method) so it is picklable by
    ``ProcessPoolExecutor``; imports the platform lazily to keep worker
    start-up cheap under spawn-based start methods.
    """
    from repro.core.platform import SimulationPlatform

    controller = task.ml_factory() if task.ml_factory is not None else None
    platform = SimulationPlatform(
        task.spec,
        task.interventions,
        ml_controller=controller,
        **dict(task.platform_kwargs),
    )
    return platform.run()


def _execute_chunk(tasks: Sequence[EpisodeTask]) -> List[EpisodeResult]:
    """Worker-side: run one chunk of tasks in order."""
    return [execute_task(task) for task in tasks]


class ProgressTracker:
    """Thread-safe ``(done, total)`` progress fan-in.

    Chunked parallel dispatch completes out of order and (depending on the
    executor implementation) may report from multiple threads; this
    serialises the counter updates and the user callback behind one lock so
    ``done`` is strictly monotonic.  ``done`` counts *episodes* but advances
    by whole chunks under parallel dispatch, so consumers must not assume
    unit increments — only that each reported value exceeds the last and
    the final call reports ``(total, total)``.
    """

    def __init__(self, total: int, callback: Optional[ProgressCallback]) -> None:
        self.total = total
        self.done = 0
        self._callback = callback
        self._lock = threading.Lock()

    def advance(self, count: int = 1) -> None:
        """Record ``count`` finished episodes and notify the callback."""
        with self._lock:
            self.done += count
            if self._callback is not None:
                self._callback(self.done, self.total)


class CampaignExecutor(abc.ABC):
    """Maps :class:`EpisodeTask`s to :class:`EpisodeResult`s, in order.

    Implementations must return results in task order and must be
    deterministic: the same task list always yields the same result list,
    regardless of scheduling.
    """

    @abc.abstractmethod
    def run(
        self,
        tasks: Sequence[EpisodeTask],
        progress: Optional[ProgressCallback] = None,
    ) -> List[EpisodeResult]:
        """Execute every task and return results in task order."""


class SerialExecutor(CampaignExecutor):
    """In-process, in-order execution (the reference backend)."""

    def run(
        self,
        tasks: Sequence[EpisodeTask],
        progress: Optional[ProgressCallback] = None,
    ) -> List[EpisodeResult]:
        tracker = ProgressTracker(len(tasks), progress)
        results: List[EpisodeResult] = []
        for task in tasks:
            results.append(execute_task(task))
            tracker.advance()
        return results


class ParallelExecutor(CampaignExecutor):
    """Process-pool execution with chunked dispatch and ordered reassembly.

    Args:
        jobs: worker process count (>= 1).  ``jobs=1`` short-circuits to
            in-process execution — no pool overhead, identical results.
        chunk_size: episodes per dispatched chunk.  ``None`` picks a size
            that yields ~4 chunks per worker, balancing dispatch overhead
            against load-balancing granularity.

    Results are reassembled in submission order, so ``run`` is
    bit-identical to :class:`SerialExecutor` on the same task list.
    """

    #: Upper bound on the auto-chosen chunk size: chunks larger than this
    #: starve the pool tail even on very large campaigns.
    MAX_AUTO_CHUNK = 16

    def __init__(self, jobs: int, chunk_size: Optional[int] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.chunk_size = chunk_size

    def _auto_chunk_size(self, total: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        per_worker = max(1, total // (self.jobs * 4))
        return min(per_worker, self.MAX_AUTO_CHUNK)

    @staticmethod
    def _dispatchable(tasks: Sequence[EpisodeTask]) -> bool:
        """True when the payload survives the process boundary."""
        try:
            pickle.dumps(tasks[0])
        except Exception:
            return False
        return True

    def run(
        self,
        tasks: Sequence[EpisodeTask],
        progress: Optional[ProgressCallback] = None,
    ) -> List[EpisodeResult]:
        if not tasks:
            return []
        if self.jobs == 1 or len(tasks) == 1:
            # One worker or one task: a pool adds spawn + pickling overhead
            # with zero parallelism to gain.
            return SerialExecutor().run(tasks, progress)
        if not self._dispatchable(tasks):
            warnings.warn(
                "campaign payload is not picklable (e.g. a lambda ml_factory); "
                "falling back to in-process execution — use a module-level "
                "factory such as repro.ml.MitigationFactory to enable "
                "parallel dispatch",
                RuntimeWarning,
                stacklevel=2,
            )
            return SerialExecutor().run(tasks, progress)

        tracker = ProgressTracker(len(tasks), progress)
        size = self._auto_chunk_size(len(tasks))
        chunks = [list(tasks[i : i + size]) for i in range(0, len(tasks), size)]
        ordered: Dict[int, List[EpisodeResult]] = {}
        with _ProcessPool(max_workers=min(self.jobs, len(chunks))) as pool:
            futures = {
                pool.submit(_execute_chunk, chunk): index
                for index, chunk in enumerate(chunks)
            }
            for future in as_completed(futures):
                index = futures[future]
                chunk_results = future.result()
                ordered[index] = chunk_results
                tracker.advance(len(chunk_results))
        results: List[EpisodeResult] = []
        for index in range(len(chunks)):
            results.extend(ordered[index])
        return results


def available_cores() -> int:
    """CPUs actually usable by this process (affinity/cgroup aware).

    The sizing input for worker fleets and parallel benchmarks:
    ``os.cpu_count()`` reports the machine, not what a container or
    ``taskset`` actually grants this process.
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def default_jobs() -> int:
    """Worker-count default: the ``REPRO_JOBS`` environment variable, or 1.

    Raises:
        ValueError: on a malformed or non-positive ``REPRO_JOBS``.
    """
    raw = os.environ.get("REPRO_JOBS")
    if raw is None:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be a positive integer (worker process count), "
            f"got {raw!r}"
        ) from None
    if jobs < 1:
        raise ValueError(
            f"REPRO_JOBS must be a positive integer (worker process count), "
            f"got {jobs}"
        )
    return jobs


def make_executor(jobs: Optional[int] = None) -> CampaignExecutor:
    """Build the executor for a requested worker count.

    Args:
        jobs: worker processes; ``None`` defers to :func:`default_jobs`
            (the ``REPRO_JOBS`` environment variable, then 1).

    Returns:
        :class:`SerialExecutor` for one worker, else a
        :class:`ParallelExecutor`.
    """
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs)
