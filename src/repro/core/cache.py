"""Digest-keyed campaign result cache.

Large campaigns (the paper's 360-episode grids, the Table VII/VIII sweeps)
are pure functions of their inputs: episode seeds are fully determined by
the :class:`~repro.attacks.campaign.CampaignSpec` and every backend returns
bit-identical results.  That makes campaign results cacheable by *content
digest*: canonicalise everything that influences the outcome — the
enumerated episode list, the :class:`~repro.safety.arbitration.InterventionConfig`,
the ML-arm fingerprint and any platform overrides — into a JSON document
with sorted keys and hash it with SHA-256.  The digest is stable across
processes, machines and Python versions (``hash()`` is salted per process
and unusable here, exactly as in :func:`repro.utils.rng.derive_seed`).

:class:`CampaignCache` maps digests to completed campaign JSONL files in a
directory.  Entries are written atomically (temp file + ``os.replace``), so
a reader never observes a partial entry; a corrupt or truncated entry is
treated as a miss and discarded.  ``run_campaign`` and the report pipeline
consult the cache before executing anything, so a repeated campaign — same
grid, same interventions, same weights — executes zero episodes.

The cache directory defaults to the ``REPRO_CACHE_DIR`` environment
variable (see :func:`default_cache`); when unset, caching is off.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import types
import warnings
from typing import Dict, List, Optional, Sequence, Union

from repro.attacks.campaign import CampaignSpec, EpisodeSpec, as_episode_list
from repro.core.metrics import EpisodeResult, PathLike, load_results, save_results
from repro.safety.arbitration import InterventionConfig

#: Bump when the canonical forms below change shape, so stale cache entries
#: keyed under an old scheme can never be returned for a new-scheme query.
DIGEST_FORMAT = 1


def canonical_episode(spec: EpisodeSpec) -> Dict[str, object]:
    """JSON-safe canonical form of one :class:`EpisodeSpec`.

    Enums flatten to their string values and friction to ``(name, mu)`` so
    the form only contains primitives ``json.dumps`` orders stably.

    Scenario-family parameters join the form only when present: episodes
    of parameter-free families (the paper's S1-S6 grid) canonicalise
    exactly as they did before the family registry existed, so historical
    cache entries stay valid (the golden-digest test pins this).
    """
    form: Dict[str, object] = {
        "scenario_id": spec.scenario_id,
        "initial_gap": spec.initial_gap,
        "fault_type": spec.fault_type.value,
        "repetition": spec.repetition,
        "seed": spec.seed,
        "friction": None
        if spec.friction is None
        else {"name": spec.friction.name, "mu": spec.friction.mu},
    }
    if spec.params:
        form["params"] = dict(spec.params)
    return form


def canonical_interventions(config: InterventionConfig) -> Dict[str, object]:
    """JSON-safe canonical form of an :class:`InterventionConfig`.

    Every field participates — including ``name``, which becomes the
    intervention label stored in each result record, so two configs that
    simulate identically but label differently must not share a cache entry.
    """
    return {
        "driver": config.driver,
        "safety_check": config.safety_check,
        "aeb": config.aeb.value,
        "ml": config.ml,
        "driver_reaction_time": config.driver_reaction_time,
        "aeb_overrides_driver": config.aeb_overrides_driver,
        "name": config.name,
    }


def factory_token(ml_factory: Optional[object]) -> Optional[str]:
    """Stable fingerprint of an ML controller factory, or None.

    Preference order: an explicit ``digest_token`` attribute (see
    :class:`repro.ml.mitigation.MitigationFactory`, which hashes its trained
    weights), then the qualified name for *stateless* callables — plain
    module-level functions and classes.  Everything else returns None and
    callers must skip caching rather than risk serving wrong results:
    lambdas and closures have no stable identity, and an arbitrary factory
    *instance* can carry state (e.g. trained weights) its class name does
    not capture, so two instances of the same class must not share a key.
    """
    if ml_factory is None:
        return None
    token = getattr(ml_factory, "digest_token", None)
    if token is not None:
        return str(token)
    if not isinstance(
        ml_factory, (types.FunctionType, types.BuiltinFunctionType, type)
    ):
        return None
    qualname = ml_factory.__qualname__
    module = ml_factory.__module__
    if "<" in qualname:  # <lambda>, <locals>: not stable across edits
        return None
    return f"callable:{module}.{qualname}"


def campaign_digest(
    campaign: Union[CampaignSpec, Sequence[EpisodeSpec]],
    interventions: InterventionConfig,
    ml_token: Optional[str] = None,
    **platform_kwargs,
) -> str:
    """SHA-256 content digest of everything that determines campaign results.

    A :class:`CampaignSpec` digests as its enumerated episode list, so a
    spec and its pre-enumerated episodes produce the same key — and a shard
    slice keys differently from the full campaign automatically.

    Args:
        campaign: a spec or a pre-enumerated (possibly sharded) episode list.
        interventions: the safety configuration under test.
        ml_token: fingerprint of the ML arm (see :func:`factory_token`);
            required to be non-None by callers when ``interventions.ml``.
        **platform_kwargs: the :class:`SimulationPlatform` overrides the
            campaign runs with (``max_steps``, ``dt``, ...).

    Returns:
        A 64-character lowercase hex digest.
    """
    episodes = as_episode_list(campaign)
    payload = {
        "format": DIGEST_FORMAT,
        "episodes": [canonical_episode(e) for e in episodes],
        "interventions": canonical_interventions(interventions),
        "ml": ml_token,
        "platform": {str(k): v for k, v in platform_kwargs.items()},
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class CampaignCache:
    """A directory of completed campaigns keyed by content digest.

    Entries are plain campaign JSONL files (``<digest>.jsonl``), so every
    existing tool — ``CampaignResult.load``, ``repro merge``, manual
    inspection — works on cache entries directly.

    Args:
        root: cache directory; created if missing (unless ``create=False``).
        create: set False for read-only consumers (status probes): the
            directory is left untouched and a missing one simply yields
            misses.  ``put`` requires the directory to exist.
    """

    def __init__(self, root: PathLike, create: bool = True) -> None:
        self.root = str(root)
        if create:
            os.makedirs(self.root, exist_ok=True)

    def path(self, key: str) -> str:
        """Filesystem path of the entry for ``key`` (whether or not present)."""
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache keys are lowercase hex digests, got {key!r}")
        return os.path.join(self.root, f"{key}.jsonl")

    def get(self, key: str) -> Optional[List[EpisodeResult]]:
        """Return the cached results for ``key``, or None on a miss.

        A corrupt or truncated entry (e.g. the process died before the
        atomic rename semantics existed, or the file was hand-edited) is
        deleted and reported as a miss: recomputing is always safe, serving
        a partial campaign as complete never is.
        """
        path = self.path(key)
        if not os.path.exists(path):
            return None
        try:
            return load_results(path, strict=True)
        except (ValueError, OSError) as exc:
            warnings.warn(
                f"discarding corrupt cache entry {path}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def put(self, key: str, results: Sequence[EpisodeResult]) -> str:
        """Store ``results`` under ``key``; returns the entry path.

        Written to a temp file then ``os.replace``-d into place, so
        concurrent readers (other shards, other machines on a shared
        filesystem) never observe a partial entry.
        """
        path = self.path(key)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".tmp", dir=self.root
        )
        os.close(fd)
        try:
            save_results(results, tmp)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)
        return path

    def entry_count(self, key: str) -> Optional[int]:
        """Record count of the entry for ``key``, or None when absent.

        A plain line count — no records are parsed — so staleness probes
        (``repro report-status`` runs one per campaign arm) stay cheap even
        over large caches.  A corrupt entry therefore *counts* here; the
        authoritative :meth:`get` still discards it on actual use, so the
        worst case is an optimistic status display, never wrong results.
        """
        path = self.path(key)
        try:
            with open(path, "rb") as handle:
                return sum(1 for line in handle if line.strip())
        except (FileNotFoundError, NotADirectoryError):
            return None

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path(key))

    def keys(self) -> List[str]:
        """Digests of every entry currently in the cache."""
        return sorted(
            name[: -len(".jsonl")]
            for name in os.listdir(self.root)
            if name.endswith(".jsonl") and not name.startswith(".")
        )

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CampaignCache(root={self.root!r}, entries={len(self)})"


def default_cache(create: bool = True) -> Optional[CampaignCache]:
    """The environment-configured cache: ``REPRO_CACHE_DIR``, or None.

    An empty value disables caching, matching the unset behaviour.
    ``create`` is forwarded to :class:`CampaignCache` (read-only consumers
    pass False so a status query never materialises the directory).
    """
    root = os.environ.get("REPRO_CACHE_DIR")
    if not root:
        return None
    return CampaignCache(root, create=create)


def resume_entry_path(directory: PathLike, digest: str) -> str:
    """The digest-named resume file path inside ``directory``.

    The single definition of the naming scheme (``<digest[:16]>.jsonl``)
    shared by the CLI grid commands and the report pipeline, so both always
    resume the same campaign from the same file.  Pure path arithmetic —
    read-only consumers (``repro report-status``) must be able to probe
    without touching the filesystem.
    """
    return os.path.join(str(directory), f"{digest[:16]}.jsonl")


def resume_file_for(directory: PathLike, digest: str) -> str:
    """:func:`resume_entry_path`, creating ``directory`` if missing.

    The write-side variant used before a campaign actually resumes into
    the file.
    """
    os.makedirs(directory, exist_ok=True)
    return resume_entry_path(directory, digest)


def write_digest_sidecar(path: PathLike, digest: str) -> str:
    """Record ``digest`` next to a campaign JSONL file (``<path>.digest``).

    The sidecar lets resume detect that a file was written under different
    inputs (platform overrides, interventions, grid) even though the
    episode records themselves cannot carry that information — the JSONL
    format stays byte-identical across serial/shard/cache paths.
    """
    sidecar = f"{os.fspath(path)}.digest"
    with open(sidecar, "w", encoding="utf-8") as handle:
        handle.write(digest + "\n")
    return sidecar


def read_digest_sidecar(path: PathLike) -> Optional[str]:
    """The digest recorded by :func:`write_digest_sidecar`, or None.

    Missing sidecars are normal (hand-built or pre-sidecar files) and mean
    "unknown", not "mismatch".
    """
    sidecar = f"{os.fspath(path)}.digest"
    try:
        with open(sidecar, "r", encoding="utf-8") as handle:
            return handle.read().strip() or None
    except (FileNotFoundError, NotADirectoryError):
        return None
