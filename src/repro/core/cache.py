"""Digest-keyed campaign result cache with pluggable storage backends.

Large campaigns (the paper's 360-episode grids, the Table VII/VIII sweeps)
are pure functions of their inputs: episode seeds are fully determined by
the :class:`~repro.attacks.campaign.CampaignSpec` and every backend returns
bit-identical results.  That makes campaign results cacheable by *content
digest*: canonicalise everything that influences the outcome — the
enumerated episode list, the :class:`~repro.safety.arbitration.InterventionConfig`,
the ML-arm fingerprint and any platform overrides — into a JSON document
with sorted keys and hash it with SHA-256.  The digest is stable across
processes, machines and Python versions (``hash()`` is salted per process
and unusable here, exactly as in :func:`repro.utils.rng.derive_seed`).

Storage is a :class:`CacheBackend`: a ``get``/``put`` mapping from digests
to completed campaign result lists.  Three backends ship:

* :class:`DirectoryCacheBackend` — one ``<digest>.jsonl`` file per entry
  in a directory, byte-compatible with the historical on-disk layout (the
  exchange format of the distributed scheduler: remote workers and the
  report pipeline share entries through one directory).
  :class:`CampaignCache` is the backwards-compatible name.
* :class:`MemoryCacheBackend` — an in-process LRU, for hot repeated
  lookups (the report DAG probes the same arms many times).
* :class:`TieredCache` — read-through composition (memory over directory
  is the common pairing); a future HTTP/S3 backend slots in behind the
  same interface without touching any consumer.

Entries are written atomically (temp file + ``os.replace``), so a reader
never observes a partial entry; a corrupt or truncated entry is treated as
a miss and discarded.  ``run_campaign`` and the report pipeline consult
the cache before executing anything, so a repeated campaign — same grid,
same interventions, same weights — executes zero episodes.

The cache directory defaults to the ``REPRO_CACHE_DIR`` environment
variable (see :func:`default_cache`); when unset, caching is off, and a
value that does not name a usable directory fails fast with an error
naming the variable.  ``repro cache list|verify|gc`` (backed by
:func:`cache_entries` / :func:`verify_cache` / :func:`gc_cache`) inspect
and maintain a directory cache from the command line.
"""

from __future__ import annotations

import abc
import hashlib
import json
import os
import tempfile
import time
import types
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.attacks.campaign import CampaignSpec, EpisodeSpec, as_episode_list
from repro.attacks.fi import FaultType
from repro.core.metrics import EpisodeResult, PathLike, load_results, save_results
from repro.safety.arbitration import InterventionConfig
from repro.sim.weather import FrictionCondition

#: Bump when the canonical forms below change shape, so stale cache entries
#: keyed under an old scheme can never be returned for a new-scheme query.
DIGEST_FORMAT = 1


def canonical_episode(spec: EpisodeSpec) -> Dict[str, object]:
    """JSON-safe canonical form of one :class:`EpisodeSpec`.

    Enums flatten to their string values and friction to ``(name, mu)`` so
    the form only contains primitives ``json.dumps`` orders stably.

    Scenario-family parameters join the form only when present: episodes
    of parameter-free families (the paper's S1-S6 grid) canonicalise
    exactly as they did before the family registry existed, so historical
    cache entries stay valid (the golden-digest test pins this).

    The form is round-trippable (:func:`episode_from_canonical`), which is
    what the distributed scheduler's worker spec files are built on.
    """
    form: Dict[str, object] = {
        "scenario_id": spec.scenario_id,
        "initial_gap": spec.initial_gap,
        "fault_type": spec.fault_type.value,
        "repetition": spec.repetition,
        "seed": spec.seed,
        "friction": None
        if spec.friction is None
        else {"name": spec.friction.name, "mu": spec.friction.mu},
    }
    if spec.params:
        form["params"] = dict(spec.params)
    return form


def episode_from_canonical(form: Dict[str, object]) -> EpisodeSpec:
    """Rebuild an :class:`EpisodeSpec` from :func:`canonical_episode` output.

    The inverse the scheduler's shard-spec files rely on: a worker process
    reconstructs its episode slice from the JSON document and re-derives
    the digest, so scheduler and worker provably agree on campaign
    identity.  ``params`` order is preserved (JSON objects keep insertion
    order), which matters — parameter order is part of the identity.

    Raises:
        ValueError: a missing key or an unknown enum value.
    """
    try:
        friction = form["friction"]
        return EpisodeSpec(
            scenario_id=str(form["scenario_id"]),
            # Numeric values pass through exactly as serialised: coercing
            # (e.g. float(60) for a spec built with an int gap) would make
            # the reconstructed episode canonicalise differently from the
            # original, so scheduler and worker digests would disagree.
            initial_gap=form["initial_gap"],  # type: ignore[arg-type]
            fault_type=FaultType(form["fault_type"]),
            repetition=int(form["repetition"]),  # type: ignore[arg-type]
            seed=int(form["seed"]),  # type: ignore[arg-type]
            friction=None
            if friction is None
            else FrictionCondition(
                name=str(friction["name"]), mu=friction["mu"]
            ),
            params=tuple((form.get("params") or {}).items()),
        )
    except KeyError as exc:
        raise ValueError(f"episode document is missing key {exc}") from None


def canonical_interventions(config: InterventionConfig) -> Dict[str, object]:
    """JSON-safe canonical form of an :class:`InterventionConfig`.

    Every field participates — including ``name``, which becomes the
    intervention label stored in each result record, so two configs that
    simulate identically but label differently must not share a cache entry.
    Round-trippable via :func:`interventions_from_canonical`.
    """
    return {
        "driver": config.driver,
        "safety_check": config.safety_check,
        "aeb": config.aeb.value,
        "ml": config.ml,
        "driver_reaction_time": config.driver_reaction_time,
        "aeb_overrides_driver": config.aeb_overrides_driver,
        "name": config.name,
    }


def interventions_from_canonical(form: Dict[str, object]) -> InterventionConfig:
    """Rebuild an :class:`InterventionConfig` from its canonical form.

    Raises:
        ValueError: a missing key or an unknown AEBS configuration value.
    """
    from repro.safety.aebs import AebsConfig

    try:
        return InterventionConfig(
            driver=bool(form["driver"]),
            safety_check=bool(form["safety_check"]),
            aeb=AebsConfig(form["aeb"]),
            ml=bool(form["ml"]),
            driver_reaction_time=form["driver_reaction_time"],  # type: ignore[arg-type]
            aeb_overrides_driver=bool(form["aeb_overrides_driver"]),
            name=str(form["name"]),
        )
    except KeyError as exc:
        raise ValueError(f"interventions document is missing key {exc}") from None


def factory_token(ml_factory: Optional[object]) -> Optional[str]:
    """Stable fingerprint of an ML controller factory, or None.

    Preference order: an explicit ``digest_token`` attribute (see
    :class:`repro.ml.mitigation.MitigationFactory`, which hashes its trained
    weights), then the qualified name for *stateless* callables — plain
    module-level functions and classes.  Everything else returns None and
    callers must skip caching rather than risk serving wrong results:
    lambdas and closures have no stable identity, and an arbitrary factory
    *instance* can carry state (e.g. trained weights) its class name does
    not capture, so two instances of the same class must not share a key.
    """
    if ml_factory is None:
        return None
    token = getattr(ml_factory, "digest_token", None)
    if token is not None:
        return str(token)
    if not isinstance(
        ml_factory, (types.FunctionType, types.BuiltinFunctionType, type)
    ):
        return None
    qualname = ml_factory.__qualname__
    module = ml_factory.__module__
    if "<" in qualname:  # <lambda>, <locals>: not stable across edits
        return None
    return f"callable:{module}.{qualname}"


def campaign_digest(
    campaign: Union[CampaignSpec, Sequence[EpisodeSpec]],
    interventions: InterventionConfig,
    ml_token: Optional[str] = None,
    **platform_kwargs,
) -> str:
    """SHA-256 content digest of everything that determines campaign results.

    A :class:`CampaignSpec` digests as its enumerated episode list, so a
    spec and its pre-enumerated episodes produce the same key — and a shard
    slice keys differently from the full campaign automatically.

    Args:
        campaign: a spec or a pre-enumerated (possibly sharded) episode list.
        interventions: the safety configuration under test.
        ml_token: fingerprint of the ML arm (see :func:`factory_token`);
            required to be non-None by callers when ``interventions.ml``.
        **platform_kwargs: the :class:`SimulationPlatform` overrides the
            campaign runs with (``max_steps``, ``dt``, ...).

    Returns:
        A 64-character lowercase hex digest.
    """
    episodes = as_episode_list(campaign)
    payload = {
        "format": DIGEST_FORMAT,
        "episodes": [canonical_episode(e) for e in episodes],
        "interventions": canonical_interventions(interventions),
        "ml": ml_token,
        "platform": {str(k): v for k, v in platform_kwargs.items()},
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# Storage backends
# --------------------------------------------------------------------- #


class CacheBackend(abc.ABC):
    """A digest-keyed store of completed campaign result lists.

    The contract every backend honours (and consumers rely on):

    * keys are lowercase hex content digests (:func:`campaign_digest`);
    * :meth:`get` returns the complete result list or None — never a
      partial campaign (a backend that cannot prove completeness must
      report a miss);
    * :meth:`put` is atomic from a reader's point of view: a concurrent
      :meth:`get` sees the old entry, no entry, or the new entry — never
      a torn one;
    * recomputing on a miss is always safe, so backends may drop entries
      at any time (eviction, corruption, garbage collection).
    """

    @staticmethod
    def check_key(key: str) -> str:
        """Validate the digest-key form shared by every backend."""
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache keys are lowercase hex digests, got {key!r}")
        return key

    @abc.abstractmethod
    def get(self, key: str) -> Optional[List[EpisodeResult]]:
        """Return the cached results for ``key``, or None on a miss."""

    @abc.abstractmethod
    def put(self, key: str, results: Sequence[EpisodeResult]) -> str:
        """Store ``results`` under ``key``; returns a backend-specific
        location string (e.g. the entry path) for logging."""

    @abc.abstractmethod
    def keys(self) -> List[str]:
        """Digests of every entry currently in the backend, sorted."""

    def entry_count(self, key: str) -> Optional[int]:
        """Record count of the entry for ``key``, or None when absent.

        Backends override this when they can answer cheaper than a full
        :meth:`get` (the directory backend counts lines without parsing).
        """
        hit = self.get(key)
        return None if hit is None else len(hit)

    @property
    def directory(self) -> Optional[str]:
        """The filesystem directory remote workers can share, or None.

        The distributed scheduler hands this to worker processes so their
        shard results land in the same store; purely in-memory backends
        return None and workers simply run uncached.
        """
        return None

    def __contains__(self, key: str) -> bool:
        return self.entry_count(key) is not None

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(entries={len(self)})"


class DirectoryCacheBackend(CacheBackend):
    """A directory of completed campaigns keyed by content digest.

    Entries are plain campaign JSONL files (``<digest>.jsonl``), so every
    existing tool — ``CampaignResult.load``, ``repro merge``, manual
    inspection — works on cache entries directly.  The layout is
    byte-compatible with the pre-backend-split ``CampaignCache``, so
    historical cache directories keep working unchanged.

    Args:
        root: cache directory; created if missing (unless ``create=False``).
        create: set False for read-only consumers (status probes): the
            directory is left untouched and a missing one simply yields
            misses.  ``put`` requires the directory to exist.
    """

    def __init__(self, root: PathLike, create: bool = True) -> None:
        self.root = str(root)
        if create:
            os.makedirs(self.root, exist_ok=True)

    def path(self, key: str) -> str:
        """Filesystem path of the entry for ``key`` (whether or not present)."""
        return os.path.join(self.root, f"{self.check_key(key)}.jsonl")

    def get(self, key: str) -> Optional[List[EpisodeResult]]:
        """Return the cached results for ``key``, or None on a miss.

        A corrupt or truncated entry (e.g. the process died before the
        atomic rename semantics existed, or the file was hand-edited) is
        deleted and reported as a miss: recomputing is always safe, serving
        a partial campaign as complete never is.
        """
        path = self.path(key)
        if not os.path.exists(path):
            return None
        try:
            return load_results(path, strict=True)
        except (ValueError, OSError) as exc:
            warnings.warn(
                f"discarding corrupt cache entry {path}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def put(self, key: str, results: Sequence[EpisodeResult]) -> str:
        """Store ``results`` under ``key``; returns the entry path.

        Written to a temp file then ``os.replace``-d into place, so
        concurrent readers (other shards, other machines on a shared
        filesystem) never observe a partial entry.
        """
        path = self.path(key)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".tmp", dir=self.root
        )
        os.close(fd)
        try:
            save_results(results, tmp)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)
        return path

    def entry_count(self, key: str) -> Optional[int]:
        """Record count of the entry for ``key``, or None when absent.

        A plain line count — no records are parsed — so staleness probes
        (``repro report-status`` runs one per campaign arm) stay cheap even
        over large caches.  A corrupt entry therefore *counts* here; the
        authoritative :meth:`get` still discards it on actual use, so the
        worst case is an optimistic status display, never wrong results.
        """
        path = self.path(key)
        try:
            with open(path, "rb") as handle:
                return sum(1 for line in handle if line.strip())
        except (FileNotFoundError, NotADirectoryError):
            return None

    @property
    def directory(self) -> Optional[str]:
        return self.root

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path(key))

    def keys(self) -> List[str]:
        """Digests of every entry currently in the cache."""
        try:
            names = sorted(os.listdir(self.root))
        except (FileNotFoundError, NotADirectoryError):
            return []
        return [
            name[: -len(".jsonl")]
            for name in names
            if name.endswith(".jsonl") and not name.startswith(".")
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(root={self.root!r}, entries={len(self)})"


class CampaignCache(DirectoryCacheBackend):
    """The directory cache under its historical name.

    Every pre-split call site (and the on-disk layout) keeps working;
    new code that only needs the interface should accept any
    :class:`CacheBackend`.
    """


class MemoryCacheBackend(CacheBackend):
    """An in-process LRU cache of campaign results.

    The cheap tier of a :class:`TieredCache`: the report DAG resolves the
    same arms repeatedly (status probe, render, manifest check), and a
    warm in-memory hit skips re-parsing a multi-thousand-line JSONL file
    each time.  Entries are stored as immutable tuples and handed out as
    fresh lists, so a caller mutating its result list can never corrupt
    the cached copy.

    Args:
        max_entries: LRU capacity (>= 1); the least recently *used* entry
            is evicted first.
    """

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Tuple[EpisodeResult, ...]]" = OrderedDict()

    def get(self, key: str) -> Optional[List[EpisodeResult]]:
        self.check_key(key)
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return list(entry)

    def put(self, key: str, results: Sequence[EpisodeResult]) -> str:
        self.check_key(key)
        self._entries[key] = tuple(results)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return f"memory:{key}"

    def entry_count(self, key: str) -> Optional[int]:
        self.check_key(key)
        entry = self._entries.get(key)
        return None if entry is None else len(entry)

    def keys(self) -> List[str]:
        return sorted(self._entries)


class TieredCache(CacheBackend):
    """Read-through composition of cache backends, fastest first.

    ``get`` consults tiers in order and *promotes* a hit into every
    faster tier, so repeated lookups are served by the cheapest backend
    that has seen the entry; ``put`` writes through every tier.  The
    canonical pairing is ``TieredCache(MemoryCacheBackend(),
    DirectoryCacheBackend(root))``; a remote (HTTP/S3) backend appended
    as the slowest tier turns this into a shared cache with a local
    overlay, with no consumer changes.
    """

    def __init__(self, *tiers: CacheBackend) -> None:
        if not tiers:
            raise ValueError("TieredCache requires at least one backend tier")
        self.tiers: Tuple[CacheBackend, ...] = tuple(tiers)

    def get(self, key: str) -> Optional[List[EpisodeResult]]:
        for index, tier in enumerate(self.tiers):
            hit = tier.get(key)
            if hit is not None:
                for faster in self.tiers[:index]:
                    faster.put(key, hit)
                return hit
        return None

    def put(self, key: str, results: Sequence[EpisodeResult]) -> str:
        locations = [tier.put(key, results) for tier in self.tiers]
        return locations[-1]

    def entry_count(self, key: str) -> Optional[int]:
        for tier in self.tiers:
            count = tier.entry_count(key)
            if count is not None:
                return count
        return None

    def keys(self) -> List[str]:
        merged = set()
        for tier in self.tiers:
            merged.update(tier.keys())
        return sorted(merged)

    @property
    def directory(self) -> Optional[str]:
        for tier in self.tiers:
            if tier.directory is not None:
                return tier.directory
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(repr(tier) for tier in self.tiers)
        return f"TieredCache({inner})"


def default_cache(create: bool = True) -> Optional[CampaignCache]:
    """The environment-configured cache: ``REPRO_CACHE_DIR``, or None.

    An empty value disables caching, matching the unset behaviour.
    ``create`` is forwarded to :class:`CampaignCache` (read-only consumers
    pass False so a status query never materialises the directory).

    Raises:
        ValueError: ``REPRO_CACHE_DIR`` names something that cannot be
            used as a cache directory (e.g. an existing file).  The
            message names the variable — a misconfigured environment must
            fail fast, not as a traceback deep inside a campaign run.
    """
    # Cache *location* only — never part of any digest.
    root = os.environ.get("REPRO_CACHE_DIR")  # repro-lint: disable=env-read-in-canonical
    if not root:
        return None
    try:
        if os.path.exists(root) and not os.path.isdir(root):
            raise NotADirectoryError(f"{root!r} exists and is not a directory")
        return CampaignCache(root, create=create)
    except OSError as exc:
        raise ValueError(
            f"REPRO_CACHE_DIR must name a usable cache directory, got "
            f"{root!r} ({exc})"
        ) from None


# --------------------------------------------------------------------- #
# Cache maintenance (``repro cache list | verify | gc``)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CacheEntryInfo:
    """One directory-cache entry as reported by ``repro cache list``.

    Attributes:
        key: the full content digest.
        path: the entry's JSONL file.
        episodes: record count (cheap line count, like ``entry_count``).
        size_bytes: file size on disk.
        age_seconds: seconds since the entry was last written.
    """

    key: str
    path: str
    episodes: int
    size_bytes: int
    age_seconds: float


def cache_entries(
    cache: DirectoryCacheBackend, now: Optional[float] = None
) -> List[CacheEntryInfo]:
    """Inventory of every entry in a directory cache, sorted by key.

    Read-only: entries that vanish mid-scan (a concurrent ``gc``) are
    skipped rather than raised.
    """
    if now is None:
        # Age maintenance is inherently wall-clock; ``now`` is injectable
        # for tests and never enters an entry key or digest.
        now = time.time()  # repro-lint: disable=wall-clock-digest
    entries: List[CacheEntryInfo] = []
    for key in cache.keys():
        path = cache.path(key)
        try:
            stat = os.stat(path)
            count = cache.entry_count(key) or 0
        except OSError:
            continue
        entries.append(
            CacheEntryInfo(
                key=key,
                path=path,
                episodes=count,
                size_bytes=stat.st_size,
                age_seconds=max(0.0, now - stat.st_mtime),
            )
        )
    return entries


def verify_cache(cache: DirectoryCacheBackend) -> Dict[str, Optional[str]]:
    """Strict-load every entry; map each key to None (ok) or its error.

    Unlike :meth:`DirectoryCacheBackend.get`, verification is **read
    only** — a corrupt entry is reported, never deleted (that is ``gc``'s
    job, and the operator may want to inspect the bytes first).  An entry
    fails when it does not strict-load, or when its records carry mixed
    intervention labels (two campaigns concatenated into one entry).
    """
    report: Dict[str, Optional[str]] = {}
    for key in cache.keys():
        path = cache.path(key)
        try:
            results = load_results(path, strict=True)
        except (ValueError, OSError) as exc:
            report[key] = str(exc)
            continue
        labels = {r.intervention for r in results}
        if len(labels) > 1:
            report[key] = (
                f"mixed intervention labels {sorted(labels)} in one entry"
            )
        else:
            report[key] = None
    return report


def gc_cache(
    cache: DirectoryCacheBackend,
    keep_days: float,
    now: Optional[float] = None,
) -> Tuple[List[str], int]:
    """Delete entries older than ``keep_days`` days; the only writing
    maintenance operation.

    Also sweeps orphaned ``.<digest>-*.tmp`` files older than the cutoff —
    the leftovers of writers killed between ``mkstemp`` and ``os.replace``.

    Returns:
        ``(removed keys, reclaimed bytes)``; temp-file sweeps count toward
        the byte total but not the key list.
    """
    if keep_days < 0:
        raise ValueError(f"keep_days must be >= 0, got {keep_days}")
    if now is None:
        # Age maintenance is inherently wall-clock; ``now`` is injectable
        # for tests and never enters an entry key or digest.
        now = time.time()  # repro-lint: disable=wall-clock-digest
    cutoff = now - keep_days * 86400.0
    removed: List[str] = []
    reclaimed = 0
    for key in cache.keys():
        path = cache.path(key)
        try:
            stat = os.stat(path)
        except OSError:
            continue
        if stat.st_mtime < cutoff:
            try:
                os.remove(path)
            except OSError:
                continue
            removed.append(key)
            reclaimed += stat.st_size
    try:
        names = sorted(os.listdir(cache.root))
    except (FileNotFoundError, NotADirectoryError):
        names = []
    for name in names:
        if not (name.startswith(".") and name.endswith(".tmp")):
            continue
        path = os.path.join(cache.root, name)
        try:
            stat = os.stat(path)
            if stat.st_mtime < cutoff:
                os.remove(path)
                reclaimed += stat.st_size
        except OSError:
            continue
    return removed, reclaimed


def resume_entry_path(directory: PathLike, digest: str) -> str:
    """The digest-named resume file path inside ``directory``.

    The single definition of the naming scheme (``<digest[:16]>.jsonl``)
    shared by the CLI grid commands and the report pipeline, so both always
    resume the same campaign from the same file.  Pure path arithmetic —
    read-only consumers (``repro report-status``) must be able to probe
    without touching the filesystem.
    """
    return os.path.join(str(directory), f"{digest[:16]}.jsonl")


def resume_file_for(directory: PathLike, digest: str) -> str:
    """:func:`resume_entry_path`, creating ``directory`` if missing.

    The write-side variant used before a campaign actually resumes into
    the file.
    """
    os.makedirs(directory, exist_ok=True)
    return resume_entry_path(directory, digest)


def write_digest_sidecar(path: PathLike, digest: str) -> str:
    """Record ``digest`` next to a campaign JSONL file (``<path>.digest``).

    The sidecar lets resume detect that a file was written under different
    inputs (platform overrides, interventions, grid) even though the
    episode records themselves cannot carry that information — the JSONL
    format stays byte-identical across serial/shard/cache paths.
    """
    sidecar = f"{os.fspath(path)}.digest"
    with open(sidecar, "w", encoding="utf-8") as handle:
        handle.write(digest + "\n")
    return sidecar


def read_digest_sidecar(path: PathLike) -> Optional[str]:
    """The digest recorded by :func:`write_digest_sidecar`, or None.

    Missing sidecars are normal (hand-built or pre-sidecar files) and mean
    "unknown", not "mismatch".
    """
    sidecar = f"{os.fspath(path)}.digest"
    try:
        with open(sidecar, "r", encoding="utf-8") as handle:
            return handle.read().strip() or None
    except (FileNotFoundError, NotADirectoryError):
        return None
