"""The closed-loop simulation platform (the paper's Fig. 3).

One :class:`SimulationPlatform` owns a single episode: the MetaDrive
substitute world, the OpenPilot-substitute control stack, the fault
injection engine, the safety interventions and the arbitration logic.
Per 100 Hz step, in order:

1. perception surrogate produces the DNN-output frame from ground truth;
2. the FI engine rewrites it according to the active attack;
3. the ADAS control loop computes the nominal command from the (possibly
   attacked) frame;
4. the ML mitigation layer (if enabled) predicts its own command from
   *fault-free* inputs and updates its CUSUM detector (Algorithm 1);
5. the AEBS evaluates TTC from its configured input source (perceived or
   independent) and raises FCW;
6. LDW evaluates, the driver model reacts to the world and the alarms;
7. the arbitrator resolves the authority hierarchy into one actuator
   command;
8. the world steps; hazards/accidents are detected; metrics accumulate.

An accident terminates the episode (the paper's accidents are terminal
outcomes); otherwise it runs ``max_steps`` (paper: 10,000 steps of ~10 ms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Tuple

from repro.adas.controlsd import AdasCommand, ControlsD
from repro.adas.perception import PerceptionModel, PerceptionParams
from repro.attacks.campaign import EpisodeSpec
from repro.attacks.fi import FaultInjectionEngine, FaultType
from repro.attacks.patches import build_attack
from repro.core.hazards import HazardMonitor
from repro.core.metrics import EpisodeResult
from repro.safety.aebs import Aebs, AebsConfig, AebsParams, AebsState
from repro.safety.arbitration import Arbitrator, InterventionConfig
from repro.safety.driver import DriverModel, DriverParams, DriverView
from repro.safety.ldw import LaneDepartureWarning
from repro.sim.scenarios import EGO_SPEED, ScenarioConfig, build_scenario
from repro.sim.sensors import GroundTruthSensor
from repro.utils.rng import RngStreams
from repro.utils.units import G


class MlController(Protocol):
    """Interface the platform expects from the ML mitigation baseline."""

    def reset(self) -> None:
        """Clear all internal state (start of an episode)."""
        ...  # pragma: no cover - protocol definition

    def step(
        self, features: List[float], y_op: AdasCommand, dt: float
    ) -> Tuple[AdasCommand, bool]:
        """One control cycle: returns ``(ml_command, recovery_mode)``."""
        ...  # pragma: no cover - protocol definition


@dataclass
class EpisodeTrace:
    """Down-sampled time series for figures (Fig. 5 / Fig. 6).

    All lists share the same length; one entry per ``trace_every`` steps.
    """

    time: List[float] = field(default_factory=list)
    ego_speed: List[float] = field(default_factory=list)
    true_gap: List[float] = field(default_factory=list)
    perceived_rd: List[float] = field(default_factory=list)
    accel: List[float] = field(default_factory=list)
    steer: List[float] = field(default_factory=list)
    lane_distance: List[float] = field(default_factory=list)
    lateral_offset: List[float] = field(default_factory=list)
    aeb_phase: List[int] = field(default_factory=list)
    fcw: List[bool] = field(default_factory=list)
    driver_brake: List[bool] = field(default_factory=list)
    driver_steer: List[bool] = field(default_factory=list)
    attack_active: List[bool] = field(default_factory=list)


class SimulationPlatform:
    """One closed-loop episode.

    Args:
        spec: the episode (scenario, gap, fault, seed, friction).
        interventions: which safety mechanisms are enabled.
        ml_controller: required when ``interventions.ml`` is True.
        dt: control/physics period [s] (paper: ~10 ms).
        max_steps: episode length (paper: 10,000).
        record_trace: keep a down-sampled :class:`EpisodeTrace`.
        trace_every: trace decimation factor.
        perception_params: optional perception overrides (ablations).
    """

    def __init__(
        self,
        spec: EpisodeSpec,
        interventions: InterventionConfig,
        ml_controller: Optional[MlController] = None,
        dt: float = 0.01,
        max_steps: int = 10_000,
        record_trace: bool = False,
        trace_every: int = 5,
        perception_params: Optional[PerceptionParams] = None,
    ) -> None:
        if interventions.ml and ml_controller is None:
            raise ValueError("interventions.ml=True requires an ml_controller")
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        if max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.spec = spec
        self.interventions = interventions
        self.dt = dt
        self.max_steps = max_steps
        self.record_trace = record_trace
        self.trace_every = max(1, trace_every)

        self.streams = RngStreams(spec.seed)
        # Episode setup goes through the scenario-family registry: the
        # ScenarioConfig resolves/validates the family parameters and
        # build_scenario dispatches to the registered family's builder.
        self.world = build_scenario(
            ScenarioConfig(
                scenario_id=spec.scenario_id,
                initial_gap=spec.initial_gap,
                seed=spec.seed,
                friction=spec.friction,
                params=spec.params,
            )
        )
        self.sensor = GroundTruthSensor(self.world)
        self.perception = PerceptionModel(self.sensor, self.streams, perception_params)
        self.controls = ControlsD(set_speed=EGO_SPEED)

        attack = build_attack(spec.fault_type.value, self.streams)
        self.fi = FaultInjectionEngine(attack, self.sensor)
        if self.fi.enabled and spec.fault_type in (
            FaultType.DESIRED_CURVATURE,
            FaultType.MIXED,
        ):
            sign = 1.0 if self.streams.get("attack").random() < 0.5 else -1.0
            self.fi.set_curvature_sign(sign)

        # AEBS always exists: with config DISABLED it actuates nothing but
        # still computes FCW (Table IV reports min t_fcw without any
        # intervention, and the driver model consumes FCW alerts).
        self.aebs = Aebs(interventions.aeb, AebsParams())
        self.ldw = LaneDepartureWarning()

        self.driver: Optional[DriverModel] = None
        if interventions.driver:
            params = DriverParams()
            if interventions.driver_reaction_time is not None:
                params = DriverParams(
                    reaction_time=interventions.driver_reaction_time
                )
            self.driver = DriverModel(params, self.streams)

        self.ml_controller = ml_controller if interventions.ml else None
        self.arbitrator = Arbitrator(interventions)
        self.hazards = HazardMonitor()
        self.trace = EpisodeTrace() if record_trace else None
        self._prev_exec = AdasCommand(0.0, 0.0)
        self._last_commanded_brake = 0.0
        self._follow_sum = 0.0
        self._follow_count = 0

    # ------------------------------------------------------------------ #
    # Episode execution
    # ------------------------------------------------------------------ #

    def run(self) -> EpisodeResult:
        """Execute the episode and return its measurements."""
        result = self._begin_episode()
        for step_index in range(self.max_steps):
            self._control_phase(step_index, result)
            self.world.step(self.dt)
            if self._after_dynamics(step_index, result):
                break
        self._finish_episode(result)
        return result

    def _begin_episode(self) -> EpisodeResult:
        """Reset per-episode state and return a fresh result record."""
        result = EpisodeResult(
            scenario_id=self.spec.scenario_id,
            initial_gap=self.spec.initial_gap,
            fault_type=self.spec.fault_type.value,
            seed=self.spec.seed,
            intervention=self.interventions.label(),
        )
        if self.ml_controller is not None:
            self.ml_controller.reset()
        self._follow_sum, self._follow_count = 0.0, 0
        return result

    def _after_dynamics(self, step_index: int, result: EpisodeResult) -> bool:
        """Post-physics bookkeeping; returns True when the episode ends."""
        aebs_state = self._post_step(step_index, result)
        self._accumulate(result, aebs_state)

        lead = self.sensor.lead()
        if (
            lead is not None
            and lead.gap < 60.0
            and abs(lead.relative_speed) < 0.75
        ):
            self._follow_sum += lead.gap
            self._follow_count += 1

        return self._close_step(step_index, result)

    def _close_step(self, step_index: int, result: EpisodeResult) -> bool:
        """Hazard detection + step count; returns True when the episode ends.

        The tail of :meth:`_after_dynamics`, split out so the vectorized
        batch path (which accumulates the running metrics on arrays) can
        run it per lane without re-running the scalar accumulation.
        """
        finished = self._hazard_step()
        result.steps = step_index + 1
        return finished

    def _hazard_step(self) -> bool:
        """Hazard detection alone; returns True once an accident latches.

        The masked entry point for the batch engine's hazard screen
        (:class:`repro.sim.batch_hazards.BatchHazardMonitor`): on quiet
        steps the screen proves this call could mark nothing and skips it,
        so it runs only on mask-flagged lanes.
        """
        return self.hazards.update(self.world) is not None

    def _finish_episode(self, result: EpisodeResult) -> None:
        result.duration = result.steps * self.dt
        result.accident = self.hazards.accident
        result.accident_time = self.hazards.accident_time
        result.h1 = self.hazards.h1.occurred
        result.h2 = self.hazards.h2.occurred
        result.attack_first_activation = self.fi.first_activation
        result.attack_activated = self.fi.first_activation is not None
        if self._follow_count > 0:
            result.following_distance = self._follow_sum / self._follow_count

    # ------------------------------------------------------------------ #
    # One control step
    # ------------------------------------------------------------------ #

    def _step(self, step_index: int, result: EpisodeResult) -> AebsState:
        """Control phase + physics + bookkeeping, as one call.

        Kept as the single-step entry point for consumers that interleave
        their own logic with stepping (e.g. the ML dataset recorder).
        """
        self._control_phase(step_index, result)
        self.world.step(self.dt)
        return self._post_step(step_index, result)

    def _control_phase(self, step_index: int, result: EpisodeResult) -> None:
        """Pipeline steps 1-7: sense, inject, decide, actuate (pre-physics)."""
        dt = self.dt
        world = self.world
        ego = world.ego
        now = world.time

        # 1-2. Perception + fault injection.
        raw = self.perception.run(dt)
        perceived = self.fi.apply(raw, now)

        # 3. ADAS control loop on the (possibly attacked) frame.
        adas_cmd = self.controls.update(perceived, ego.speed, dt)

        # 4. ML mitigation from fault-free inputs (Algorithm 1).
        ml_cmd: Optional[AdasCommand] = None
        ml_recovery = False
        if self.ml_controller is not None:
            features = self._ml_features()
            ml_cmd, ml_recovery = self.ml_controller.step(features, adas_cmd, dt)

        # 5. AEBS from its configured input source.
        lead_valid, rd, rs = self._aebs_input(perceived)
        aebs_state = self.aebs.update(ego.speed, lead_valid, rd, rs, dt)

        # 6. LDW + driver.
        dist_right, dist_left = world.lane_line_distances()
        ldw_active = self.ldw.update(
            dist_right, dist_left, ego.lateral_speed(), ego.speed
        )
        driver_action = None
        if self.driver is not None:
            driver_action = self.driver.update(
                self._driver_view(
                    now,
                    aebs_state.fcw,
                    ldw_active,
                    dist_right,
                    dist_left,
                    aeb_active=aebs_state.phase > 0,
                )
            )

        # 7. Arbitration.
        final = self.arbitrator.resolve(
            adas_cmd=adas_cmd,
            ml_cmd=ml_cmd,
            ml_recovery=ml_recovery,
            aebs_state=aebs_state,
            driver_action=driver_action,
            current_steer=ego.steer,
            dt=dt,
        )
        # The ACC brake interface has limited authority; only the AEB path
        # and the driver's pedal command the full hydraulic range.
        applied_accel = final.accel
        if final.long_authority in ("adas", "ml"):
            authority = ego.powertrain.params.adas_brake_authority
            applied_accel = max(applied_accel, -authority)
        self._stage_control(
            now, perceived, aebs_state, driver_action, ml_recovery, final,
            applied_accel,
        )

    def _stage_control(
        self,
        now: float,
        perceived,
        aebs_state: AebsState,
        driver_action,
        ml_recovery: bool,
        final,
        applied_accel: float,
    ) -> None:
        """Actuate a resolved command and stage it for ``_post_step``.

        The tail of the control phase, split out so the vectorized batch
        path (:class:`repro.sim.batch_control.BatchControlStack`) can stage
        per-lane results identically after computing the decision math on
        arrays.
        """
        self._last_commanded_brake = max(0.0, -final.accel)
        self.world.ego.apply_controls(
            applied_accel, final.steer, driver_steering=final.driver_steering
        )
        self._ctrl = (now, perceived, aebs_state, driver_action, ml_recovery, final)

    def _post_step(self, step_index: int, result: EpisodeResult) -> AebsState:
        """Post-physics bookkeeping for the step staged by ``_control_phase``."""
        now, perceived, aebs_state, driver_action, ml_recovery, final = self._ctrl
        dt = self.dt

        self._prev_exec = AdasCommand(final.accel, final.steer)
        result.aeb.record(aebs_state.phase > 0, now, dt)
        result.fcw.record(aebs_state.fcw, now, dt)
        if driver_action is not None:
            result.driver_brake.record(driver_action.brake_active, now, dt)
            result.driver_steer.record(driver_action.steer_active, now, dt)
        result.ml_recovery.record(ml_recovery, now, dt)

        if self.trace is not None and step_index % self.trace_every == 0:
            self._record_trace(perceived, aebs_state, driver_action)
        return aebs_state

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _aebs_input(self, perceived) -> Tuple[bool, float, float]:
        """Select the AEBS input per its configuration.

        INDEPENDENT reads the secure radar (which keeps tracking its locked
        threat object during lateral drifts); COMPROMISED (and DISABLED,
        which only computes FCW) read the ADAS lead track built from the
        post-FI perception stream.
        """
        if self.interventions.aeb is AebsConfig.INDEPENDENT:
            truth = self.sensor.radar_lead()
            if truth is None:
                return False, 0.0, 0.0
            return True, truth.gap, truth.relative_speed
        track = self.controls.last_lead
        return track.valid, track.rd, track.rs

    def _driver_view(
        self,
        now: float,
        fcw: bool,
        ldw_active: bool,
        dist_right: float,
        dist_left: float,
        aeb_active: bool = False,
    ) -> DriverView:
        ego = self.world.ego
        lead = self.sensor.lead_human()
        cut_in = self.sensor.cut_in() is not None
        return DriverView(
            time=now,
            ego_speed=ego.speed,
            ego_accel=ego.accel,
            gap=lead.gap if lead is not None else None,
            closing=lead.relative_speed if lead is not None else 0.0,
            cut_in=cut_in,
            dist_right=dist_right,
            dist_left=dist_left,
            lateral_offset=ego.d - self.world.road.lane_center(0),
            rel_heading=ego.psi,
            fcw=fcw,
            ldw=ldw_active,
            aeb_active=aeb_active,
        )

    def _ml_features(self) -> List[float]:
        """Fault-free input vector for the ML baseline.

        The paper assumes "the ML model has access to fault-free input data
        from an independent or redundant sensor measurement".
        """
        ego = self.world.ego
        lead = self.sensor.lead()
        rd = lead.gap if lead is not None else 120.0
        dist_right, dist_left = self.world.lane_line_distances()
        return [
            ego.speed,
            min(rd, 120.0),
            dist_left,
            dist_right,
            self._prev_exec.accel,
            self._prev_exec.steer,
        ]

    def _accumulate(self, result: EpisodeResult, aebs_state: AebsState) -> None:
        ego = self.world.ego
        lead = self.sensor.lead()
        if lead is not None and lead.relative_speed > 0.3:
            result.min_ttc = min(result.min_ttc, lead.gap / lead.relative_speed)
        t_fcw = self.aebs.params.reaction_time + ego.speed / self.aebs.params.driver_decel
        result.min_tfcw = min(result.min_tfcw, t_fcw)
        # Hardest brake value = peak *commanded* brake as a fraction of a
        # full-brake command (what the paper's "Hardest Brake Value"
        # percentage reports), not the friction-limited achieved decel.
        brake_fraction = self._last_commanded_brake / G
        result.hardest_brake_fraction = max(result.hardest_brake_fraction, brake_fraction)
        dist_right, dist_left = self.world.lane_line_distances()
        result.min_lane_distance = min(result.min_lane_distance, dist_right, dist_left)
        result.max_speed = max(result.max_speed, ego.speed)

    def _record_trace(self, perceived, aebs_state: AebsState, driver_action) -> None:
        assert self.trace is not None
        ego = self.world.ego
        lead = self.sensor.lead()
        dist_right, dist_left = self.world.lane_line_distances()
        self.trace.time.append(self.world.time)
        self.trace.ego_speed.append(ego.speed)
        self.trace.true_gap.append(lead.gap if lead is not None else float("nan"))
        self.trace.perceived_rd.append(
            perceived.lead_rd if perceived.lead_valid else float("nan")
        )
        self.trace.accel.append(ego.accel)
        self.trace.steer.append(ego.steer)
        self.trace.lane_distance.append(min(dist_right, dist_left))
        self.trace.lateral_offset.append(ego.d)
        self.trace.aeb_phase.append(aebs_state.phase)
        self.trace.fcw.append(aebs_state.fcw)
        self.trace.driver_brake.append(
            driver_action.brake_active if driver_action is not None else False
        )
        self.trace.driver_steer.append(
            driver_action.steer_active if driver_action is not None else False
        )
        self.trace.attack_active.append(self.fi.rd_active or self.fi.curvature_active)
