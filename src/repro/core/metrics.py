"""Per-episode measurements and campaign aggregation.

:class:`EpisodeResult` is the flat record one simulation produces; the
:func:`aggregate` helper computes the quantities the paper's tables report:

* accident split (A1 % / A2 %) and prevention rate (Table VI, VII, VIII);
* average mitigation time — the mean *duration* an intervention was
  actively applied, over the episodes where it triggered (Table VI);
* trigger rate — the fraction of episodes where an intervention fired
  (Table VI);
* following distance, hardest-brake value, min TTC and min ``t_fcw``
  (Table IV);
* minimum distance to lane lines (Table V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional, Sequence

from repro.core.hazards import AccidentType


@dataclass
class InterventionActivity:
    """Activation bookkeeping for one intervention channel."""

    triggered: bool = False
    first_time: Optional[float] = None
    active_duration: float = 0.0
    activation_count: int = 0
    _prev_active: bool = False

    def record(self, active: bool, time: float, dt: float) -> None:
        """Accumulate one step of (in)activity."""
        if active:
            if not self.triggered:
                self.triggered = True
                self.first_time = time
            if not self._prev_active:
                self.activation_count += 1
            self.active_duration += dt
        self._prev_active = active

    @property
    def mean_activation_duration(self) -> float:
        """Average length of one activation [s] (0 when never active)."""
        if self.activation_count == 0:
            return 0.0
        return self.active_duration / self.activation_count


@dataclass
class EpisodeResult:
    """Everything measured in one simulation.

    Attributes mirror the paper's reported quantities; see module
    docstring.  ``prevented`` is only meaningful for attack episodes:
    True when the injected fault did not end in an accident.
    """

    scenario_id: str = ""
    initial_gap: float = 0.0
    fault_type: str = "none"
    seed: int = 0
    intervention: str = "none"

    accident: Optional[AccidentType] = None
    accident_time: Optional[float] = None
    h1: bool = False
    h2: bool = False

    steps: int = 0
    duration: float = 0.0

    min_ttc: float = float("inf")
    min_tfcw: float = float("inf")
    following_distance: Optional[float] = None
    hardest_brake_fraction: float = 0.0
    min_lane_distance: float = float("inf")
    max_speed: float = 0.0

    attack_first_activation: Optional[float] = None
    attack_activated: bool = False

    aeb: InterventionActivity = field(default_factory=InterventionActivity)
    driver_brake: InterventionActivity = field(default_factory=InterventionActivity)
    driver_steer: InterventionActivity = field(default_factory=InterventionActivity)
    ml_recovery: InterventionActivity = field(default_factory=InterventionActivity)
    fcw: InterventionActivity = field(default_factory=InterventionActivity)

    @property
    def prevented(self) -> bool:
        """Attack ran and no accident resulted."""
        return self.attack_activated and self.accident is None

    @property
    def crashed(self) -> bool:
        """An accident (A1 or A2) occurred."""
        return self.accident is not None


@dataclass(frozen=True)
class AggregateStats:
    """Campaign-level statistics over a set of :class:`EpisodeResult`s.

    Rates are fractions in [0, 1]; times in seconds.  ``None`` marks
    undefined aggregates (e.g. mitigation time when never triggered).
    """

    episodes: int
    a1_rate: float
    a2_rate: float
    accident_rate: float
    prevented_rate: float
    hazard_rate: float
    aeb_trigger_rate: float
    driver_brake_trigger_rate: float
    driver_steer_trigger_rate: float
    ml_trigger_rate: float
    aeb_mitigation_time: Optional[float]
    driver_brake_mitigation_time: Optional[float]
    driver_steer_mitigation_time: Optional[float]
    mean_following_distance: Optional[float]
    mean_hardest_brake: float
    min_ttc: float
    min_tfcw: float
    min_lane_distance: float


def aggregate(results: Sequence[EpisodeResult]) -> AggregateStats:
    """Aggregate a homogeneous set of episode results.

    Raises:
        ValueError: on an empty result set.
    """
    if not results:
        raise ValueError("cannot aggregate an empty result set")
    n = len(results)
    a1 = sum(1 for r in results if r.accident is AccidentType.A1)
    a2 = sum(1 for r in results if r.accident is AccidentType.A2)
    attacked = [r for r in results if r.attack_activated]
    prevented = sum(1 for r in attacked if r.prevented)
    follow = [r.following_distance for r in results if r.following_distance is not None]

    def trigger_rate(key: str) -> float:
        return sum(1 for r in results if getattr(r, key).triggered) / n

    def mitigation_time(key: str) -> Optional[float]:
        # Mean duration of one intervention activation, over the episodes
        # where the mechanism fired (the paper's "Avg. Mitigation Time").
        durations = [
            getattr(r, key).mean_activation_duration
            for r in results
            if getattr(r, key).triggered
        ]
        return mean(durations) if durations else None

    return AggregateStats(
        episodes=n,
        a1_rate=a1 / n,
        a2_rate=a2 / n,
        accident_rate=(a1 + a2) / n,
        prevented_rate=(prevented / len(attacked)) if attacked else 0.0,
        hazard_rate=sum(1 for r in results if r.h1 or r.h2) / n,
        aeb_trigger_rate=trigger_rate("aeb"),
        driver_brake_trigger_rate=trigger_rate("driver_brake"),
        driver_steer_trigger_rate=trigger_rate("driver_steer"),
        ml_trigger_rate=trigger_rate("ml_recovery"),
        aeb_mitigation_time=mitigation_time("aeb"),
        driver_brake_mitigation_time=mitigation_time("driver_brake"),
        driver_steer_mitigation_time=mitigation_time("driver_steer"),
        mean_following_distance=mean(follow) if follow else None,
        mean_hardest_brake=mean(r.hardest_brake_fraction for r in results),
        min_ttc=min(r.min_ttc for r in results),
        min_tfcw=min(r.min_tfcw for r in results),
        min_lane_distance=min(r.min_lane_distance for r in results),
    )


def group_by(
    results: Sequence[EpisodeResult], key: str
) -> Dict[str, List[EpisodeResult]]:
    """Group results by an :class:`EpisodeResult` attribute name."""
    groups: Dict[str, List[EpisodeResult]] = {}
    for r in results:
        groups.setdefault(str(getattr(r, key)), []).append(r)
    return groups
