"""Per-episode measurements and campaign aggregation.

:class:`EpisodeResult` is the flat record one simulation produces; the
:func:`aggregate` helper computes the quantities the paper's tables report:

* accident split (A1 % / A2 %) and prevention rate (Table VI, VII, VIII);
* average mitigation time — the mean *duration* an intervention was
  actively applied, over the episodes where it triggered (Table VI);
* trigger rate — the fraction of episodes where an intervention fired
  (Table VI);
* following distance, hardest-brake value, min TTC and min ``t_fcw``
  (Table IV);
* minimum distance to lane lines (Table V).

Episode-level minima use ``float("inf")`` as the in-flight sentinel while
a simulation accumulates, but the sentinel never leaves this module:
:func:`aggregate` normalises undefined minima to ``None`` (rendered as
``-`` in the tables), and the :meth:`EpisodeResult.to_dict` /
:meth:`EpisodeResult.from_dict` pair maps the sentinel to ``None`` and
back — ``inf`` is not valid JSON, and the serialized form is what crosses
process boundaries in parallel campaigns and lands in JSONL files
(:func:`save_results` / :func:`load_results`).
"""

from __future__ import annotations

import json
import math
import os
import warnings
from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional, Sequence, Union

from repro.core.hazards import AccidentType


@dataclass
class InterventionActivity:
    """Activation bookkeeping for one intervention channel."""

    triggered: bool = False
    first_time: Optional[float] = None
    active_duration: float = 0.0
    activation_count: int = 0
    _prev_active: bool = False

    def record(self, active: bool, time: float, dt: float) -> None:
        """Accumulate one step of (in)activity."""
        if active:
            if not self.triggered:
                self.triggered = True
                self.first_time = time
            if not self._prev_active:
                self.activation_count += 1
            self.active_duration += dt
        self._prev_active = active

    @property
    def mean_activation_duration(self) -> float:
        """Average length of one activation [s] (0 when never active)."""
        if self.activation_count == 0:
            return 0.0
        return self.active_duration / self.activation_count

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips via :meth:`from_dict`)."""
        return {
            "triggered": self.triggered,
            "first_time": self.first_time,
            "active_duration": self.active_duration,
            "activation_count": self.activation_count,
            "prev_active": self._prev_active,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "InterventionActivity":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            triggered=bool(data["triggered"]),
            first_time=data.get("first_time"),  # type: ignore[arg-type]
            active_duration=float(data["active_duration"]),  # type: ignore[arg-type]
            activation_count=int(data["activation_count"]),  # type: ignore[arg-type]
            _prev_active=bool(data.get("prev_active", False)),
        )


#: The intervention-activity channels an :class:`EpisodeResult` carries,
#: in serialization order.
ACTIVITY_CHANNELS = ("aeb", "driver_brake", "driver_steer", "ml_recovery", "fcw")


def _undefined_to_none(value: float) -> Optional[float]:
    """Map the in-flight ``inf``/non-finite minima sentinel to ``None``."""
    return None if not math.isfinite(value) else value


def _none_to_undefined(value: Optional[float]) -> float:
    """Inverse of :func:`_undefined_to_none` (None -> ``inf`` sentinel)."""
    return float("inf") if value is None else float(value)


@dataclass
class EpisodeResult:
    """Everything measured in one simulation.

    Attributes mirror the paper's reported quantities; see module
    docstring.  ``prevented`` is only meaningful for attack episodes:
    True when the injected fault did not end in an accident.
    """

    scenario_id: str = ""
    initial_gap: float = 0.0
    fault_type: str = "none"
    seed: int = 0
    intervention: str = "none"

    accident: Optional[AccidentType] = None
    accident_time: Optional[float] = None
    h1: bool = False
    h2: bool = False

    steps: int = 0
    duration: float = 0.0

    min_ttc: float = float("inf")
    min_tfcw: float = float("inf")
    following_distance: Optional[float] = None
    hardest_brake_fraction: float = 0.0
    min_lane_distance: float = float("inf")
    max_speed: float = 0.0

    attack_first_activation: Optional[float] = None
    attack_activated: bool = False

    aeb: InterventionActivity = field(default_factory=InterventionActivity)
    driver_brake: InterventionActivity = field(default_factory=InterventionActivity)
    driver_steer: InterventionActivity = field(default_factory=InterventionActivity)
    ml_recovery: InterventionActivity = field(default_factory=InterventionActivity)
    fcw: InterventionActivity = field(default_factory=InterventionActivity)

    @property
    def prevented(self) -> bool:
        """Attack ran and no accident resulted."""
        return self.attack_activated and self.accident is None

    @property
    def crashed(self) -> bool:
        """An accident (A1 or A2) occurred."""
        return self.accident is not None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation.

        The ``inf`` minima sentinels become ``None`` (``inf`` is invalid
        JSON) and the accident enum becomes its string value;
        :meth:`from_dict` reverses both, so the round trip is exact.
        """
        return {
            "scenario_id": self.scenario_id,
            "initial_gap": self.initial_gap,
            "fault_type": self.fault_type,
            "seed": self.seed,
            "intervention": self.intervention,
            "accident": self.accident.value if self.accident is not None else None,
            "accident_time": self.accident_time,
            "h1": self.h1,
            "h2": self.h2,
            "steps": self.steps,
            "duration": self.duration,
            "min_ttc": _undefined_to_none(self.min_ttc),
            "min_tfcw": _undefined_to_none(self.min_tfcw),
            "following_distance": self.following_distance,
            "hardest_brake_fraction": self.hardest_brake_fraction,
            "min_lane_distance": _undefined_to_none(self.min_lane_distance),
            "max_speed": self.max_speed,
            "attack_first_activation": self.attack_first_activation,
            "attack_activated": self.attack_activated,
            "channels": {
                name: getattr(self, name).to_dict() for name in ACTIVITY_CHANNELS
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EpisodeResult":
        """Rebuild an :class:`EpisodeResult` from :meth:`to_dict` output."""
        accident = data.get("accident")
        channels: Dict[str, Dict[str, object]] = data.get("channels", {})  # type: ignore[assignment]
        return cls(
            scenario_id=str(data["scenario_id"]),
            initial_gap=float(data["initial_gap"]),  # type: ignore[arg-type]
            fault_type=str(data["fault_type"]),
            seed=int(data["seed"]),  # type: ignore[arg-type]
            intervention=str(data["intervention"]),
            accident=AccidentType(accident) if accident is not None else None,
            accident_time=data.get("accident_time"),  # type: ignore[arg-type]
            h1=bool(data["h1"]),
            h2=bool(data["h2"]),
            steps=int(data["steps"]),  # type: ignore[arg-type]
            duration=float(data["duration"]),  # type: ignore[arg-type]
            min_ttc=_none_to_undefined(data.get("min_ttc")),
            min_tfcw=_none_to_undefined(data.get("min_tfcw")),
            following_distance=data.get("following_distance"),  # type: ignore[arg-type]
            hardest_brake_fraction=float(data["hardest_brake_fraction"]),  # type: ignore[arg-type]
            min_lane_distance=_none_to_undefined(data.get("min_lane_distance")),
            max_speed=float(data["max_speed"]),  # type: ignore[arg-type]
            attack_first_activation=data.get("attack_first_activation"),  # type: ignore[arg-type]
            attack_activated=bool(data["attack_activated"]),
            **{
                name: InterventionActivity.from_dict(channels[name])
                if name in channels
                else InterventionActivity()
                for name in ACTIVITY_CHANNELS
            },
        )


@dataclass(frozen=True)
class AggregateStats:
    """Campaign-level statistics over a set of :class:`EpisodeResult`s.

    Rates are fractions in [0, 1]; times in seconds.  ``None`` marks
    undefined aggregates (e.g. mitigation time when never triggered).
    """

    episodes: int
    a1_rate: float
    a2_rate: float
    accident_rate: float
    prevented_rate: float
    hazard_rate: float
    aeb_trigger_rate: float
    driver_brake_trigger_rate: float
    driver_steer_trigger_rate: float
    ml_trigger_rate: float
    aeb_mitigation_time: Optional[float]
    driver_brake_mitigation_time: Optional[float]
    driver_steer_mitigation_time: Optional[float]
    mean_following_distance: Optional[float]
    mean_hardest_brake: float
    min_ttc: Optional[float]
    min_tfcw: Optional[float]
    min_lane_distance: Optional[float]


def aggregate(results: Sequence[EpisodeResult]) -> AggregateStats:
    """Aggregate a homogeneous set of episode results.

    Raises:
        ValueError: on an empty result set.
    """
    if not results:
        raise ValueError("cannot aggregate an empty result set")
    n = len(results)
    a1 = sum(1 for r in results if r.accident is AccidentType.A1)
    a2 = sum(1 for r in results if r.accident is AccidentType.A2)
    attacked = [r for r in results if r.attack_activated]
    prevented = sum(1 for r in attacked if r.prevented)
    follow = [r.following_distance for r in results if r.following_distance is not None]

    def trigger_rate(key: str) -> float:
        return sum(1 for r in results if getattr(r, key).triggered) / n

    def mitigation_time(key: str) -> Optional[float]:
        # Mean duration of one intervention activation, over the episodes
        # where the mechanism fired (the paper's "Avg. Mitigation Time").
        durations = [
            getattr(r, key).mean_activation_duration
            for r in results
            if getattr(r, key).triggered
        ]
        return mean(durations) if durations else None

    return AggregateStats(
        episodes=n,
        a1_rate=a1 / n,
        a2_rate=a2 / n,
        accident_rate=(a1 + a2) / n,
        prevented_rate=(prevented / len(attacked)) if attacked else 0.0,
        hazard_rate=sum(1 for r in results if r.h1 or r.h2) / n,
        aeb_trigger_rate=trigger_rate("aeb"),
        driver_brake_trigger_rate=trigger_rate("driver_brake"),
        driver_steer_trigger_rate=trigger_rate("driver_steer"),
        ml_trigger_rate=trigger_rate("ml_recovery"),
        aeb_mitigation_time=mitigation_time("aeb"),
        driver_brake_mitigation_time=mitigation_time("driver_brake"),
        driver_steer_mitigation_time=mitigation_time("driver_steer"),
        mean_following_distance=mean(follow) if follow else None,
        mean_hardest_brake=mean(r.hardest_brake_fraction for r in results),
        min_ttc=_undefined_to_none(min(r.min_ttc for r in results)),
        min_tfcw=_undefined_to_none(min(r.min_tfcw for r in results)),
        min_lane_distance=_undefined_to_none(
            min(r.min_lane_distance for r in results)
        ),
    )


def group_by(
    results: Sequence[EpisodeResult], key: str
) -> Dict[str, List[EpisodeResult]]:
    """Group results by an :class:`EpisodeResult` attribute name."""
    groups: Dict[str, List[EpisodeResult]] = {}
    for r in results:
        groups.setdefault(str(getattr(r, key)), []).append(r)
    return groups


# --------------------------------------------------------------------- #
# JSONL campaign persistence
# --------------------------------------------------------------------- #

PathLike = Union[str, os.PathLike]


def _trim_partial_final_line(path: PathLike) -> None:
    """Drop a dangling newline-less tail so appends never corrupt a record.

    A write killed mid-record leaves an incomplete (unreadable by
    construction) final line; appending onto it would fuse two records into
    one malformed *interior* line that even tolerant loading rejects.
    Missing files are left to ``open(..., "a")`` to create.
    """
    try:
        handle = open(path, "rb+")
    except FileNotFoundError:
        return
    with handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            return
        handle.seek(size - 1)
        if handle.read(1) == b"\n":
            return
        # Scan backwards in blocks for the last complete line's newline.
        cut, position = 0, size
        block = 65536
        while position > 0:
            start = max(0, position - block)
            handle.seek(start)
            data = handle.read(position - start)
            newline = data.rfind(b"\n")
            if newline != -1:
                cut = start + newline + 1
                break
            position = start
        handle.truncate(cut)


def save_results(
    results: Sequence[EpisodeResult], path: PathLike, append: bool = False
) -> int:
    """Write episode results as JSONL (one episode per line).

    The format is append-friendly and streamable, which is what makes
    campaigns cacheable and resumable: a partially-written file is still a
    valid prefix of the campaign.

    Args:
        results: the records to write.
        path: destination file.
        append: extend an existing file instead of replacing it — the
            streaming mode ``run_campaign`` uses to persist completed
            episodes as the campaign progresses.  If the file ends in a
            dangling partial line (a previous write died mid-record), that
            unreadable fragment is trimmed first, so the appended file is
            byte-identical to a one-shot save of its complete records plus
            ``results``.

    Returns:
        The number of records written.
    """
    if append:
        _trim_partial_final_line(path)
    with open(path, "a" if append else "w", encoding="utf-8") as handle:
        for result in results:
            handle.write(
                json.dumps(result.to_dict(), sort_keys=True, allow_nan=False)
            )
            handle.write("\n")
    return len(results)


def load_results(path: PathLike, strict: bool = False) -> List[EpisodeResult]:
    """Read a JSONL file written by :func:`save_results`.

    Blank lines are skipped, so concatenated / appended files load cleanly.
    A malformed *final* line is treated as a truncated write (the process
    died mid-save): the valid prefix is returned with a ``RuntimeWarning``,
    which is what makes partially-written campaigns resumable.

    Args:
        path: the JSONL file to read.
        strict: raise on a malformed final line instead of dropping it.
            Consumers that require a *complete* campaign — shard merging,
            the result cache — must not silently treat a truncated file as
            the whole thing.

    Raises:
        ValueError: when a non-final line is not a valid episode record,
            or (with ``strict``) when any line is.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    numbered = [
        (lineno, line.strip())
        for lineno, line in enumerate(lines, start=1)
        if line.strip()
    ]
    results: List[EpisodeResult] = []
    for position, (lineno, line) in enumerate(numbered):
        try:
            results.append(EpisodeResult.from_dict(json.loads(line)))
        # ValueError also covers json.JSONDecodeError and bad enum/number
        # conversions inside from_dict.
        except (ValueError, KeyError, TypeError) as exc:
            if position == len(numbered) - 1 and not strict:
                warnings.warn(
                    f"{path}:{lineno}: dropping malformed final record "
                    f"(likely a truncated write: {exc}); loading the "
                    f"{len(results)}-episode prefix",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            raise ValueError(
                f"{path}:{lineno}: malformed episode record: {exc}"
            ) from exc
    return results


def count_records(path: PathLike) -> int:
    """Number of valid episode records in the resumable prefix of ``path``.

    The cheap freshness probe behind ``repro report-status``: a missing
    file counts as zero, a truncated final line is silently dropped (it is
    exactly what resume will drop), and a file corrupted anywhere earlier
    counts as zero — resume would refuse it, so none of its records are
    usable as-is.
    """
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return len(load_results(path))
    except (FileNotFoundError, NotADirectoryError):
        return 0
    except ValueError:
        return 0
