"""The closed-loop evaluation platform (the paper's Fig. 3).

* :mod:`repro.core.hazards` — hazard (H1/H2) and accident (A1/A2)
  detection.
* :mod:`repro.core.metrics` — per-episode measurement record and campaign
  aggregation (prevention rates, mitigation times, trigger rates, hardest
  brake, min TTC, following distance, lane-line distance).
* :mod:`repro.core.platform` — the 100 Hz loop wiring simulator,
  perception, fault injection, ADAS, safety interventions and arbitration.
* :mod:`repro.core.executor` — pluggable campaign execution backends
  (serial / process-pool) with deterministic, ordered results.
* :mod:`repro.core.cache` — digest-keyed campaign result cache behind
  pluggable storage backends (``REPRO_CACHE_DIR``).
* :mod:`repro.core.experiment` — campaign execution (sharding, resume,
  caching) and aggregation.
* :mod:`repro.core.scheduler` — the distributed campaign scheduler
  (plan → dispatch → collect over a registry of worker backends).
"""

from repro.core.hazards import AccidentType, HazardMonitor
from repro.core.metrics import EpisodeResult, aggregate, load_results, save_results
from repro.core.platform import EpisodeTrace, SimulationPlatform
from repro.core.executor import (
    CampaignExecutor,
    ParallelExecutor,
    SerialExecutor,
    available_cores,
    make_executor,
)
from repro.core.cache import (
    CacheBackend,
    CampaignCache,
    DirectoryCacheBackend,
    MemoryCacheBackend,
    TieredCache,
    campaign_digest,
    default_cache,
)
from repro.core.experiment import (
    CampaignResult,
    merge_shards,
    run_campaign,
    run_episode,
)
from repro.core.scheduler import (
    CampaignPlan,
    InProcessBackend,
    SSHBackend,
    SchedulerError,
    ShardJob,
    SubprocessFleetBackend,
    UnknownBackendError,
    WorkerBackend,
    dispatch_campaign,
    make_backend,
    register_backend,
    registered_backends,
)

__all__ = [
    "AccidentType",
    "HazardMonitor",
    "EpisodeResult",
    "aggregate",
    "load_results",
    "save_results",
    "EpisodeTrace",
    "SimulationPlatform",
    "CampaignExecutor",
    "ParallelExecutor",
    "SerialExecutor",
    "available_cores",
    "make_executor",
    "CacheBackend",
    "CampaignCache",
    "DirectoryCacheBackend",
    "MemoryCacheBackend",
    "TieredCache",
    "campaign_digest",
    "default_cache",
    "CampaignResult",
    "merge_shards",
    "run_campaign",
    "run_episode",
    "CampaignPlan",
    "InProcessBackend",
    "SSHBackend",
    "SchedulerError",
    "ShardJob",
    "SubprocessFleetBackend",
    "UnknownBackendError",
    "WorkerBackend",
    "dispatch_campaign",
    "make_backend",
    "register_backend",
    "registered_backends",
]
