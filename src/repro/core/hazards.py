"""Hazard and accident detection (the paper's Section IV-C).

* **A1** — forward collision with the lead vehicle.
* **A2** — driving out of the lane, or colliding with side vehicles.
* **H1** — violating the safety distance to the lead (may escalate to A1).
* **H2** — driving too close to a lane line (e.g. 0.1 m; may escalate
  to A2).

Accidents are terminal: the platform stops the episode when one latches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.world import World


class AccidentType(enum.Enum):
    """Terminal accident classes."""

    A1 = "A1"  # forward collision with the lead vehicle
    A2 = "A2"  # lane departure or side collision


@dataclass
class HazardRecord:
    """First-occurrence bookkeeping for one hazard/accident class."""

    occurred: bool = False
    first_time: Optional[float] = None

    def mark(self, time: float) -> None:
        """Latch the first occurrence."""
        if not self.occurred:
            self.occurred = True
            self.first_time = time


@dataclass
class HazardMonitor:
    """Per-step hazard and accident detection over a :class:`World`.

    Attributes:
        ttc_hazard_threshold: H1 latches when the true TTC to the lead
            falls below this [s].
        headway_fraction: H1 also latches when the true gap falls below
            this fraction of the ego speed (a headway-seconds rule) [s].
        lane_distance_hazard: H2 latches when a body side is closer than
            this to a lane line [m] (paper: 0.1 m).
    """

    ttc_hazard_threshold: float = 2.5
    headway_fraction: float = 0.35
    lane_distance_hazard: float = 0.1
    h1: HazardRecord = field(default_factory=HazardRecord)
    h2: HazardRecord = field(default_factory=HazardRecord)
    accident: Optional[AccidentType] = None
    accident_time: Optional[float] = None

    def update(self, world: World) -> Optional[AccidentType]:
        """Evaluate one step; returns the accident type once one latches."""
        if self.accident is not None:
            return self.accident
        ego = world.ego
        now = world.time

        # --- Hazards ------------------------------------------------------
        lead = world.lead_actor()
        if lead is not None:
            gap = max(0.0, lead.rear_s - ego.front_s)
            closing = ego.speed - lead.speed
            if closing > 0.3 and gap / closing < self.ttc_hazard_threshold:
                self.h1.mark(now)
            if gap < self.headway_fraction * ego.speed:
                self.h1.mark(now)
        dist_right, dist_left = world.lane_line_distances()
        if min(dist_right, dist_left) < self.lane_distance_hazard:
            self.h2.mark(now)

        # --- Accidents ----------------------------------------------------
        # A2 follows the MetaDrive semantics the paper evaluates under:
        # leaving the drivable road surface, or colliding with a side
        # vehicle.  Drifting *into* the adjacent lane is not yet terminal
        # (there is a whole lane of paved road to cross — and a side
        # vehicle there produces a lateral collision), whereas drifting
        # outward exits the road almost immediately; the asymmetry is
        # inherited from the road geometry.
        if world.collision is not None:
            if world.collision.lateral:
                self._latch(AccidentType.A2, world.collision.time)
            else:
                self._latch(AccidentType.A1, world.collision.time)
        elif world.off_road:
            self._latch(AccidentType.A2, now)
        return self.accident

    def _latch(self, accident: AccidentType, time: float) -> None:
        self.accident = accident
        self.accident_time = time
        if accident is AccidentType.A1:
            self.h1.mark(time)
        else:
            self.h2.mark(time)

    @property
    def any_hazard(self) -> bool:
        """True if any hazard (H1 or H2) occurred."""
        return self.h1.occurred or self.h2.occurred
