"""Campaign execution: run episode grids under intervention configurations.

``run_campaign`` executes every :class:`EpisodeSpec` of a campaign under one
:class:`InterventionConfig` and wraps the results for aggregation.  Episode
seeds are derived deterministically (see :mod:`repro.attacks.campaign`), so
running the *same* campaign under different intervention configurations
compares them on identical attack episodes — the paper's Table VI setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.attacks.campaign import CampaignSpec, EpisodeSpec, enumerate_campaign
from repro.core.metrics import AggregateStats, EpisodeResult, aggregate, group_by
from repro.core.platform import MlController, SimulationPlatform
from repro.safety.arbitration import InterventionConfig


@dataclass
class CampaignResult:
    """All episode results of one campaign run.

    Attributes:
        intervention: the configuration label the campaign ran under.
        results: one :class:`EpisodeResult` per episode, in order.
    """

    intervention: str
    results: List[EpisodeResult]

    def overall(self) -> AggregateStats:
        """Aggregate over every episode."""
        return aggregate(self.results)

    def by_scenario(self) -> Dict[str, AggregateStats]:
        """Aggregate per scenario id (Table IV/V layout)."""
        return {
            sid: aggregate(rs) for sid, rs in group_by(self.results, "scenario_id").items()
        }

    def by_fault_type(self) -> Dict[str, AggregateStats]:
        """Aggregate per fault type (Table VI layout)."""
        return {
            ft: aggregate(rs) for ft, rs in group_by(self.results, "fault_type").items()
        }


def run_episode(
    spec: EpisodeSpec,
    interventions: InterventionConfig,
    ml_controller: Optional[MlController] = None,
    **platform_kwargs,
) -> EpisodeResult:
    """Run a single episode and return its measurements."""
    platform = SimulationPlatform(
        spec, interventions, ml_controller=ml_controller, **platform_kwargs
    )
    return platform.run()


def run_campaign(
    campaign: CampaignSpec | Sequence[EpisodeSpec],
    interventions: InterventionConfig,
    ml_factory: Optional[Callable[[], MlController]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    **platform_kwargs,
) -> CampaignResult:
    """Run every episode of ``campaign`` under ``interventions``.

    Args:
        campaign: a :class:`CampaignSpec` or a pre-enumerated episode list.
        interventions: the safety configuration under test.
        ml_factory: builds a fresh ML controller per episode (required when
            ``interventions.ml``); a factory rather than an instance so
            controller state can never leak across episodes.
        progress: optional ``(done, total)`` callback.
        **platform_kwargs: forwarded to :class:`SimulationPlatform`.
    """
    if isinstance(campaign, CampaignSpec):
        episodes = enumerate_campaign(campaign)
    else:
        episodes = list(campaign)
    if interventions.ml and ml_factory is None:
        raise ValueError("interventions.ml=True requires ml_factory")

    results: List[EpisodeResult] = []
    total = len(episodes)
    for i, spec in enumerate(episodes):
        controller = ml_factory() if (interventions.ml and ml_factory) else None
        results.append(
            run_episode(spec, interventions, ml_controller=controller, **platform_kwargs)
        )
        if progress is not None:
            progress(i + 1, total)
    return CampaignResult(intervention=interventions.label(), results=results)
