"""Campaign execution: run episode grids under intervention configurations.

``run_campaign`` executes every :class:`EpisodeSpec` of a campaign under one
:class:`InterventionConfig` and wraps the results for aggregation.  Episode
seeds are derived deterministically (see :mod:`repro.attacks.campaign`), so
running the *same* campaign under different intervention configurations
compares them on identical attack episodes — the paper's Table VI setup.

Execution architecture
----------------------

Episodes are dispatched through the pluggable executor layer in
:mod:`repro.core.executor`:

* ``run_campaign(..., jobs=1)`` (the default) uses the in-process
  :class:`~repro.core.executor.SerialExecutor`;
* ``jobs=N`` fans episodes out to a process pool via
  :class:`~repro.core.executor.ParallelExecutor` — results are reassembled
  in enumeration order, so both backends return **bit-identical**
  :class:`CampaignResult`\\ s for the same spec;
* ``jobs=None`` defers to the ``REPRO_JOBS`` environment variable (then 1),
  so existing call sites parallelise without code changes;
* an explicit ``executor=`` overrides all of the above (used by tests and
  custom backends).

Environment variables (shared with the CLI and benchmark suite):

* ``REPRO_JOBS`` — default worker process count for campaigns.
* ``REPRO_REPS`` / ``REPRO_FULL`` — benchmark repetition count (see
  :mod:`benchmarks._bench_utils`).

Campaign results persist as JSONL via :meth:`CampaignResult.save` /
:meth:`CampaignResult.load` (one :class:`EpisodeResult` per line), and the
persistence layer on top of that format makes campaigns distributable:

* **resume** — ``run_campaign(..., resume_path=...)`` loads the valid
  prefix of a partially-written JSONL file, skips the episodes it already
  records, runs only the remainder and rewrites the file complete.  Safe at
  any truncation point, including a write cut mid-line.
* **cache** — ``run_campaign(..., cache=...)`` (default: the
  ``REPRO_CACHE_DIR`` environment variable, see
  :func:`repro.core.cache.default_cache`) consults a digest-keyed
  :class:`~repro.core.cache.CampaignCache` before executing anything, so a
  repeated campaign executes zero episodes.
* **sharding** — a contiguous slice of the enumeration (see
  :class:`~repro.attacks.campaign.ShardSpec`) runs anywhere as an ordinary
  episode-list campaign; :func:`merge_shards` validates and reassembles the
  shard files into the unsharded campaign.

``run_campaign`` itself is a thin façade over the distributed scheduler
(:mod:`repro.core.scheduler`): it builds a single-shard
:class:`~repro.core.scheduler.CampaignPlan` and executes it in-process,
so the one implementation of cache-consult / resume / streaming behaviour
is shared with every multi-worker backend (``repro dispatch``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.attacks.campaign import CampaignSpec, EpisodeSpec
from repro.core.cache import CacheBackend
from repro.core.executor import CampaignExecutor
from repro.core.metrics import (
    AggregateStats,
    EpisodeResult,
    PathLike,
    aggregate,
    group_by,
    load_results,
    save_results,
)
from repro.core.platform import MlController, SimulationPlatform
from repro.safety.arbitration import InterventionConfig


@dataclass
class CampaignResult:
    """All episode results of one campaign run.

    Attributes:
        intervention: the configuration label the campaign ran under.
        results: one :class:`EpisodeResult` per episode, in order.
    """

    intervention: str
    results: List[EpisodeResult]

    def overall(self) -> AggregateStats:
        """Aggregate over every episode."""
        return aggregate(self.results)

    def by_scenario(self) -> Dict[str, AggregateStats]:
        """Aggregate per scenario id (Table IV/V layout)."""
        return {
            sid: aggregate(rs) for sid, rs in group_by(self.results, "scenario_id").items()
        }

    def by_fault_type(self) -> Dict[str, AggregateStats]:
        """Aggregate per fault type (Table VI layout)."""
        return {
            ft: aggregate(rs) for ft, rs in group_by(self.results, "fault_type").items()
        }

    def save(self, path) -> int:
        """Persist every episode as JSONL; returns the record count."""
        return save_results(self.results, path)

    @classmethod
    def load(cls, path) -> "CampaignResult":
        """Rebuild a campaign from a JSONL file written by :meth:`save`.

        The intervention label is recovered from the episode records (they
        all carry it); an empty file loads as an empty ``"none"`` campaign.

        Raises:
            ValueError: when the records carry mixed intervention labels
                (e.g. two different campaigns concatenated into one file) —
                aggregating across intervention arms silently would corrupt
                every rate the tables report.
        """
        results = load_results(path)
        labels = {r.intervention for r in results}
        if len(labels) > 1:
            raise ValueError(
                f"{path}: mixed intervention labels {sorted(labels)}; a "
                "CampaignResult aggregates one configuration — load mixed "
                "files with load_results() and group them explicitly"
            )
        intervention = results[0].intervention if results else "none"
        return cls(intervention=intervention, results=results)


def run_episode(
    spec: EpisodeSpec,
    interventions: InterventionConfig,
    ml_controller: Optional[MlController] = None,
    **platform_kwargs,
) -> EpisodeResult:
    """Run a single episode and return its measurements."""
    platform = SimulationPlatform(
        spec, interventions, ml_controller=ml_controller, **platform_kwargs
    )
    return platform.run()


def _validate_resume_prefix(
    prior: Sequence[EpisodeResult],
    episodes: Sequence[EpisodeSpec],
    label: str,
    path: PathLike,
) -> None:
    """Refuse to resume from a file that is not a prefix of this campaign.

    Raises:
        ValueError: when the file holds more records than the campaign
            enumerates, carries a different intervention label, or records
            an episode identity other than the one enumerated at its
            position — silently mixing campaigns would corrupt every
            aggregate downstream.
    """
    if len(prior) > len(episodes):
        raise ValueError(
            f"{path}: resume file holds {len(prior)} records but the campaign "
            f"enumerates only {len(episodes)} episodes; refusing to resume — "
            "is this the right campaign (or an unsharded file resumed as a "
            "shard)?"
        )
    for position, (record, spec) in enumerate(zip(prior, episodes)):
        if record.intervention != label:
            raise ValueError(
                f"{path}: record {position} was run under intervention "
                f"{record.intervention!r}, campaign requests {label!r}; "
                "refusing to resume across intervention configurations"
            )
        recorded = (
            record.scenario_id,
            record.initial_gap,
            record.fault_type,
            record.seed,
        )
        expected = (
            spec.scenario_id,
            spec.initial_gap,
            spec.fault_type.value,
            spec.seed,
        )
        if recorded != expected:
            raise ValueError(
                f"{path}: record {position} is episode {recorded}, campaign "
                f"enumerates {expected} at that position; refusing to resume "
                "a mismatched file"
            )


def run_campaign(
    campaign: CampaignSpec | Sequence[EpisodeSpec],
    interventions: InterventionConfig,
    ml_factory: Optional[Callable[[], MlController]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    jobs: Optional[int] = None,
    executor: Union[str, CampaignExecutor, None] = None,
    lanes: Optional[int] = None,
    resume_path: Optional[PathLike] = None,
    cache: Union[CacheBackend, None, bool] = None,
    **platform_kwargs,
) -> CampaignResult:
    """Run every episode of ``campaign`` under ``interventions``.

    Args:
        campaign: a :class:`CampaignSpec` or a pre-enumerated episode list
            (e.g. a :class:`~repro.attacks.campaign.ShardSpec` slice).
        interventions: the safety configuration under test.
        ml_factory: builds a fresh ML controller per episode (required when
            ``interventions.ml``); a factory rather than an instance so
            controller state can never leak across episodes.  Use
            :class:`repro.ml.mitigation.MitigationFactory` — it is picklable
            (crosses the process boundary under parallel execution) and
            carries a ``digest_token`` so ML campaigns cache like the rest.
        progress: optional ``(done, total)`` callback; invoked thread-safely
            and monotonically by every backend.  ``total`` always counts the
            full campaign; under resume, ``done`` starts at the number of
            episodes already on disk.
        jobs: worker process count; ``None`` defers to the ``REPRO_JOBS``
            environment variable (then serial).  Composes with
            ``executor="batch"`` (lane shards across ``jobs`` workers,
            batch engine inside each); ignored when ``executor`` is a
            ready instance.
        executor: explicit execution backend — an
            :data:`~repro.core.executor.EXECUTOR_NAMES` name
            (``"serial"``, ``"parallel"``, ``"batch"``) or a ready
            :class:`~repro.core.executor.CampaignExecutor` instance.
            ``executor="batch"`` steps all episodes in lockstep through
            the vectorized batch engine with bit-identical results, ML
            arm included; with ``jobs > 1`` it resolves to the
            batch×jobs hybrid (still bit-identical).
        lanes: peak lockstep lane count for ``executor="batch"``; ``None``
            defers to the ``REPRO_BATCH_LANES`` environment variable
            (then uncapped).  Ignored by the other executors.
        resume_path: campaign JSONL file to resume into.  An existing file's
            valid prefix (truncated final lines tolerated) is loaded and its
            episodes skipped; only the remainder executes, with completed
            episodes streamed to the file batch by batch so an interrupted
            run leaves a resumable prefix behind.  A ``.digest`` sidecar
            records the campaign's content digest — which carries the full
            scenario-family identity (family id plus resolved sweep
            parameters, see :func:`repro.core.cache.canonical_episode`) —
            so a file written under different inputs (platform overrides,
            interventions, grid, or another sweep point) is refused instead
            of silently absorbed; files without a sidecar fall back to
            per-record identity validation (episode seeds encode the sweep
            point, so mismatched families/points are still caught).
            Missing files simply mean a fresh run whose results land at
            this path.
        cache: a :class:`~repro.core.cache.CacheBackend` (e.g. a
            :class:`~repro.core.cache.CampaignCache` directory) to
            consult/populate, ``None``/``True`` to use the
            ``REPRO_CACHE_DIR`` environment default, or ``False`` to
            disable caching outright.  A cache hit returns the stored
            results without executing a single episode.
        **platform_kwargs: forwarded to :class:`SimulationPlatform`.

    Returns:
        A :class:`CampaignResult` whose ``results`` order matches the
        campaign's enumeration order regardless of backend, sharding,
        resumption or caching.
    """
    # A façade over the scheduler's single-shard plan: the cache-consult /
    # resume / stream-to-disk behaviour lives in execute_shard, shared with
    # every distributed backend.  Imported lazily — experiment is the
    # module the scheduler builds on, not the other way round.
    from repro.core.scheduler import CampaignPlan, execute_shard

    plan = CampaignPlan.build(
        campaign, interventions, shards=1, ml_factory=ml_factory, **platform_kwargs
    )
    (job,) = plan.jobs
    return execute_shard(
        job,
        jobs=jobs,
        executor=executor,
        lanes=lanes,
        progress=progress,
        resume_path=resume_path,
        cache=cache,
    )


def merge_shards(
    paths: Sequence[PathLike], output: Optional[PathLike] = None
) -> CampaignResult:
    """Validate and concatenate shard JSONL files into one campaign.

    Pass the shards in shard-index order (``1/N .. N/N``): shards are
    contiguous slices of the enumeration, so in-order concatenation
    reproduces the unsharded campaign file byte for byte.

    Args:
        paths: shard files written by ``repro campaign --shard I/N`` (an
            empty *file* is fine — small campaigns can enumerate fewer
            episodes than shards — but the path list must not be empty).
        output: when given, the merged campaign is also saved there.

    Raises:
        ValueError: on an empty path list, a truncated/partial shard, mixed
            intervention labels, or overlapping shards (the same episode
            identity recorded twice).
    """
    if not paths:
        raise ValueError("merge requires at least one shard file")
    results: List[EpisodeResult] = []
    first_seen: Dict[tuple, str] = {}
    labels: Dict[str, str] = {}
    for path in paths:
        try:
            shard = load_results(path, strict=True)
        except ValueError as exc:
            raise ValueError(
                f"{path}: refusing to merge a partial or corrupt shard — "
                f"re-run it to completion (resume with --resume) first ({exc})"
            ) from exc
        for record in shard:
            labels.setdefault(record.intervention, str(path))
            identity = (
                record.scenario_id,
                record.initial_gap,
                record.fault_type,
                record.seed,
            )
            if identity in first_seen:
                raise ValueError(
                    f"{path}: episode {identity} already provided by "
                    f"{first_seen[identity]}; overlapping shards — was the "
                    "same --shard run twice?"
                )
            first_seen[identity] = str(path)
        results.extend(shard)
    if len(labels) > 1:
        raise ValueError(
            f"mixed intervention labels {sorted(labels)}: shards of "
            "different campaigns cannot be merged into one CampaignResult"
        )
    label = next(iter(labels)) if labels else "none"
    merged = CampaignResult(intervention=label, results=results)
    if output is not None:
        merged.save(output)
    return merged
