"""Campaign execution: run episode grids under intervention configurations.

``run_campaign`` executes every :class:`EpisodeSpec` of a campaign under one
:class:`InterventionConfig` and wraps the results for aggregation.  Episode
seeds are derived deterministically (see :mod:`repro.attacks.campaign`), so
running the *same* campaign under different intervention configurations
compares them on identical attack episodes — the paper's Table VI setup.

Execution architecture
----------------------

Episodes are dispatched through the pluggable executor layer in
:mod:`repro.core.executor`:

* ``run_campaign(..., jobs=1)`` (the default) uses the in-process
  :class:`~repro.core.executor.SerialExecutor`;
* ``jobs=N`` fans episodes out to a process pool via
  :class:`~repro.core.executor.ParallelExecutor` — results are reassembled
  in enumeration order, so both backends return **bit-identical**
  :class:`CampaignResult`\\ s for the same spec;
* ``jobs=None`` defers to the ``REPRO_JOBS`` environment variable (then 1),
  so existing call sites parallelise without code changes;
* an explicit ``executor=`` overrides all of the above (used by tests and
  custom backends).

Environment variables (shared with the CLI and benchmark suite):

* ``REPRO_JOBS`` — default worker process count for campaigns.
* ``REPRO_REPS`` / ``REPRO_FULL`` — benchmark repetition count (see
  :mod:`benchmarks._bench_utils`).

Campaign results persist as JSONL via :meth:`CampaignResult.save` /
:meth:`CampaignResult.load` (one :class:`EpisodeResult` per line), which is
what makes large campaigns cacheable and resumable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.attacks.campaign import CampaignSpec, EpisodeSpec, enumerate_campaign
from repro.core.executor import CampaignExecutor, EpisodeTask, make_executor
from repro.core.metrics import (
    AggregateStats,
    EpisodeResult,
    aggregate,
    group_by,
    load_results,
    save_results,
)
from repro.core.platform import MlController, SimulationPlatform
from repro.safety.arbitration import InterventionConfig


@dataclass
class CampaignResult:
    """All episode results of one campaign run.

    Attributes:
        intervention: the configuration label the campaign ran under.
        results: one :class:`EpisodeResult` per episode, in order.
    """

    intervention: str
    results: List[EpisodeResult]

    def overall(self) -> AggregateStats:
        """Aggregate over every episode."""
        return aggregate(self.results)

    def by_scenario(self) -> Dict[str, AggregateStats]:
        """Aggregate per scenario id (Table IV/V layout)."""
        return {
            sid: aggregate(rs) for sid, rs in group_by(self.results, "scenario_id").items()
        }

    def by_fault_type(self) -> Dict[str, AggregateStats]:
        """Aggregate per fault type (Table VI layout)."""
        return {
            ft: aggregate(rs) for ft, rs in group_by(self.results, "fault_type").items()
        }

    def save(self, path) -> int:
        """Persist every episode as JSONL; returns the record count."""
        return save_results(self.results, path)

    @classmethod
    def load(cls, path) -> "CampaignResult":
        """Rebuild a campaign from a JSONL file written by :meth:`save`.

        The intervention label is recovered from the episode records (they
        all carry it); an empty file loads as an empty ``"none"`` campaign.

        Raises:
            ValueError: when the records carry mixed intervention labels
                (e.g. two different campaigns concatenated into one file) —
                aggregating across intervention arms silently would corrupt
                every rate the tables report.
        """
        results = load_results(path)
        labels = {r.intervention for r in results}
        if len(labels) > 1:
            raise ValueError(
                f"{path}: mixed intervention labels {sorted(labels)}; a "
                "CampaignResult aggregates one configuration — load mixed "
                "files with load_results() and group them explicitly"
            )
        intervention = results[0].intervention if results else "none"
        return cls(intervention=intervention, results=results)


def run_episode(
    spec: EpisodeSpec,
    interventions: InterventionConfig,
    ml_controller: Optional[MlController] = None,
    **platform_kwargs,
) -> EpisodeResult:
    """Run a single episode and return its measurements."""
    platform = SimulationPlatform(
        spec, interventions, ml_controller=ml_controller, **platform_kwargs
    )
    return platform.run()


def run_campaign(
    campaign: CampaignSpec | Sequence[EpisodeSpec],
    interventions: InterventionConfig,
    ml_factory: Optional[Callable[[], MlController]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    jobs: Optional[int] = None,
    executor: Optional[CampaignExecutor] = None,
    **platform_kwargs,
) -> CampaignResult:
    """Run every episode of ``campaign`` under ``interventions``.

    Args:
        campaign: a :class:`CampaignSpec` or a pre-enumerated episode list.
        interventions: the safety configuration under test.
        ml_factory: builds a fresh ML controller per episode (required when
            ``interventions.ml``); a factory rather than an instance so
            controller state can never leak across episodes.  Must be
            picklable (a module-level callable, not a lambda) to cross the
            process boundary under parallel execution.
        progress: optional ``(done, total)`` callback; invoked thread-safely
            and monotonically by every backend.
        jobs: worker process count; ``None`` defers to the ``REPRO_JOBS``
            environment variable (then serial).  Ignored when ``executor``
            is given.
        executor: explicit execution backend (overrides ``jobs``).
        **platform_kwargs: forwarded to :class:`SimulationPlatform`.

    Returns:
        A :class:`CampaignResult` whose ``results`` order matches the
        campaign's enumeration order regardless of backend.
    """
    if isinstance(campaign, CampaignSpec):
        episodes = enumerate_campaign(campaign)
    else:
        episodes = list(campaign)
    if interventions.ml and ml_factory is None:
        raise ValueError("interventions.ml=True requires ml_factory")

    tasks = [
        EpisodeTask.make(
            spec,
            interventions,
            ml_factory=ml_factory if interventions.ml else None,
            **platform_kwargs,
        )
        for spec in episodes
    ]
    backend = executor if executor is not None else make_executor(jobs)
    results = backend.run(tasks, progress=progress)
    return CampaignResult(intervention=interventions.label(), results=results)
