"""Lint-engine throughput: files/second over the shipped tree.

Not a paper table — the engineering bench that keeps the ``repro lint``
CI gate honest.  The gate runs on every push, so the engine must stay
fast enough that nobody is tempted to skip it: the bench scans the
whole ``src/repro`` tree (every rule, pragmas, parent-link maps) and
reports files/s and findings, failing loudly if the shipped tree ever
stops being clean (the self-check the CI job relies on).
"""

import os
import sys
import time

from _bench_utils import run_once

from repro.lint import lint_paths, select_rules

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")


def test_lint_throughput(benchmark):
    rules = select_rules()
    report = run_once(benchmark, lambda: lint_paths([SRC], rules=rules))
    assert report.clean, "shipped tree must lint clean"

    # Re-time outside pytest-benchmark for the human-readable rate.
    start = time.perf_counter()
    again = lint_paths([SRC], rules=rules)
    elapsed = time.perf_counter() - start
    files = len(again.files)
    rate = files / elapsed if elapsed > 0 else float("inf")
    sys.stderr.write(
        f"\n[bench_lint] {files} files, {len(rules)} rules in "
        f"{elapsed:.3f}s -> {rate:.0f} files/s\n"
    )


def test_lint_single_rule_overhead(benchmark):
    # The fixed per-file cost (read, parse, parent links) with the
    # cheapest selection: the floor any added rule builds on.
    rules = select_rules(enable=["unseeded-rng"])
    report = run_once(benchmark, lambda: lint_paths([SRC], rules=rules))
    assert report.clean
