"""Scenario-construction throughput: episodes built per second per family.

Not a paper table — this bench prices the family-registry dispatch layer.
Episode setup (registry lookup, parameter resolution, RNG derivation,
road/actor construction) runs once per episode of every campaign, so a
regression here multiplies across the full grids.  The paper families
measure the registry against the pre-registry hardcoded constructors
(whose work they inherited unchanged); the workload families price their
richer worlds (custom roads, platoons).

Each benchmark reports ``builds_per_second`` in ``extra_info`` so runs
can be compared across commits at a glance.
"""

import pytest

from repro.sim.families import registered_families
from repro.sim.scenarios import ScenarioConfig, build_scenario

#: Worlds built per timed round — enough to amortise timer overhead.
BUILDS_PER_ROUND = 25


def _build_many(family_id: str) -> int:
    total_actors = 0
    for seed in range(BUILDS_PER_ROUND):
        world = build_scenario(ScenarioConfig(scenario_id=family_id, seed=seed))
        total_actors += len(world.agents)
    return total_actors


@pytest.mark.parametrize("family_id", sorted(registered_families()))
def test_scenario_construction_rate(benchmark, family_id):
    total_actors = benchmark(_build_many, family_id)
    assert total_actors >= BUILDS_PER_ROUND  # every world has traffic
    benchmark.extra_info["builds_per_second"] = (
        BUILDS_PER_ROUND / benchmark.stats.stats.mean
    )
