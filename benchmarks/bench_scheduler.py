"""Scheduler dispatch overhead and fleet throughput scaling.

Not a paper table — the engineering bench that keeps the distributed
scheduler honest.  Two questions:

* **Dispatch overhead per shard** — what does plan → dispatch → collect
  cost *beyond* running the episodes?  Measured on a tiny-step campaign
  so the fixed costs (shard files, sidecars, spec I/O, merge validation)
  dominate; reported per shard.
* **Throughput scaling** — serial ``run_campaign`` vs the in-process
  backend vs a real 2-worker subprocess fleet on the same grid, with the
  bit-identical guarantee asserted along the way (reported like
  ``bench_platform_speed.py``'s speedup report).

A subprocess fleet pays ~1 interpreter start-up per worker, so it only
wins once shards carry real work — exactly what the report prints.
"""

import os
import sys
import time

from _bench_utils import repetitions, run_once

from repro.attacks.campaign import CampaignSpec
from repro.attacks.fi import FaultType
from repro.core.executor import available_cores
from repro.core.scheduler import (
    InProcessBackend,
    SubprocessFleetBackend,
    dispatch_campaign,
)
from repro.core.experiment import run_campaign
from repro.safety.aebs import AebsConfig
from repro.safety.arbitration import InterventionConfig

_CFG = InterventionConfig(driver=True, aeb=AebsConfig.INDEPENDENT)


def _grid(reps: int) -> CampaignSpec:
    return CampaignSpec(
        fault_types=[FaultType.RELATIVE_DISTANCE],
        initial_gaps=(60.0,),
        repetitions=reps,
        seed=2025,
    )


def _fleet_env() -> None:
    """Let spawned ``repro worker`` processes import this checkout."""
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    existing = os.environ.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = src + (
            os.pathsep + existing if existing else ""
        )


def test_dispatch_overhead_per_shard(benchmark, tmp_path, capsys):
    """Fixed scheduler cost per shard, isolated from simulation time.

    A 12-episode campaign at max_steps=50 is almost all overhead: the
    delta between a scheduled dispatch (4 shards -> 4 shard files, spec
    validation, merge) and a bare ``run_campaign`` is the scheduler tax.
    """
    spec = _grid(2)  # 12 episodes

    started = time.perf_counter()
    bare = run_campaign(spec, _CFG, cache=False, max_steps=50)
    bare_s = time.perf_counter() - started

    shards = 4

    def dispatch():
        return dispatch_campaign(
            spec,
            _CFG,
            backend=InProcessBackend(),
            shards=shards,
            workdir=str(tmp_path / "wd"),
            cache=False,
            max_steps=50,
        )

    dispatched = run_once(benchmark, dispatch)
    assert dispatched.results == bare.results
    scheduled_s = benchmark.stats.stats.mean
    per_shard_ms = max(0.0, (scheduled_s - bare_s)) * 1000 / shards
    with capsys.disabled():
        print(
            f"\ndispatch overhead: bare {bare_s * 1000:.1f} ms, scheduled "
            f"{scheduled_s * 1000:.1f} ms over {shards} shards "
            f"(~{per_shard_ms:.1f} ms/shard)"
        )


def test_fleet_throughput_scaling(tmp_path, capsys):
    """Serial vs in-process backend vs 2-worker subprocess fleet.

    Printed like ``bench_platform_speed.py``'s speedup report; the hard
    assertion is bit-identical results across all three paths (wall-clock
    ratios are hardware- and load-dependent, so they are reported, not
    gated).
    """
    _fleet_env()
    spec = _grid(repetitions(2))  # 12 episodes per default rep count
    max_steps = 2000

    started = time.perf_counter()
    serial = run_campaign(spec, _CFG, cache=False, max_steps=max_steps)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    in_process = dispatch_campaign(
        spec,
        _CFG,
        backend=InProcessBackend(),
        workdir=str(tmp_path / "inproc"),
        cache=False,
        max_steps=max_steps,
    )
    in_process_s = time.perf_counter() - started

    workers = min(2, available_cores())
    started = time.perf_counter()
    fleet = dispatch_campaign(
        spec,
        _CFG,
        backend=SubprocessFleetBackend(workers=workers, python=sys.executable),
        workdir=str(tmp_path / "fleet"),
        cache=False,
        max_steps=max_steps,
    )
    fleet_s = time.perf_counter() - started

    assert in_process.results == serial.results
    assert fleet.results == serial.results
    fleet_speedup = serial_s / fleet_s if fleet_s > 0 else float("inf")
    with capsys.disabled():
        print(
            f"\nscheduler throughput ({len(serial.results)} episodes): "
            f"serial {serial_s:.2f}s, in-process backend {in_process_s:.2f}s, "
            f"{workers}-worker fleet {fleet_s:.2f}s "
            f"({fleet_speedup:.2f}x vs serial, {available_cores()} cores)"
        )
