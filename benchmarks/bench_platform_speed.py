"""Platform throughput: closed-loop steps per second, and campaign dispatch.

Not a paper table — this is the engineering bench that keeps the campaign
runtimes honest (the full Table VI grid is ~2,900 episodes).  The
serial-vs-parallel campaign benches measure the executor layer
(:mod:`repro.core.executor`): on an N-core machine the parallel backend
should approach Nx the serial episode throughput (>= 2x at ``jobs=4`` on
4 cores), while returning bit-identical results.
"""

import time

import pytest

from repro.attacks.campaign import CampaignSpec, EpisodeSpec
from repro.attacks.fi import FaultType
from repro.core.executor import ParallelExecutor, SerialExecutor, available_cores
from repro.core.experiment import run_campaign
from repro.core.platform import SimulationPlatform
from repro.safety.aebs import AebsConfig
from repro.safety.arbitration import InterventionConfig


def _run_episode(interventions):
    spec = EpisodeSpec(
        scenario_id="S1",
        initial_gap=60.0,
        fault_type=FaultType.NONE,
        repetition=0,
        seed=77,
    )
    platform = SimulationPlatform(spec, interventions, max_steps=2000)
    return platform.run()


def test_platform_step_rate_bare(benchmark):
    result = benchmark(lambda: _run_episode(InterventionConfig()))
    assert result.steps == 2000


def test_platform_step_rate_full_stack(benchmark):
    cfg = InterventionConfig(
        driver=True, safety_check=True, aeb=AebsConfig.INDEPENDENT
    )
    result = benchmark(lambda: _run_episode(cfg))
    assert result.steps == 2000


# --------------------------------------------------------------------- #
# Campaign dispatch: serial vs parallel executor throughput
# --------------------------------------------------------------------- #

#: Small-but-real campaign: 12 episodes x 2,000 steps of full-stack
#: closed-loop simulation (enough work per episode that dispatch overhead
#: is honest, small enough for CI).
_CAMPAIGN = CampaignSpec(
    fault_types=[FaultType.RELATIVE_DISTANCE],
    initial_gaps=(60.0,),
    repetitions=2,
    seed=2025,
)
_CAMPAIGN_CFG = InterventionConfig(driver=True, aeb=AebsConfig.INDEPENDENT)


def _run_campaign_with(executor):
    return run_campaign(
        _CAMPAIGN, _CAMPAIGN_CFG, executor=executor, max_steps=2000
    )


def test_campaign_throughput_serial(benchmark):
    campaign = benchmark.pedantic(
        lambda: _run_campaign_with(SerialExecutor()), rounds=1, iterations=1
    )
    assert len(campaign.results) == 12


def test_campaign_throughput_parallel(benchmark):
    jobs = min(4, available_cores())
    campaign = benchmark.pedantic(
        lambda: _run_campaign_with(ParallelExecutor(jobs=jobs)),
        rounds=1,
        iterations=1,
    )
    assert len(campaign.results) == 12


def test_parallel_speedup_report(capsys):
    """Measure and print the serial-vs-parallel speedup directly.

    The >= 2x acceptance bar only arms with >= 4 *available* cores
    (affinity/cgroup aware; note hyperthreads count, so a 2-physical-core
    host with SMT may sit near the bar); on smaller machines the bench
    still verifies bit-identical results and reports the measured ratio.
    """
    started = time.perf_counter()
    serial = _run_campaign_with(SerialExecutor())
    serial_s = time.perf_counter() - started

    cores = available_cores()
    jobs = min(4, cores)
    started = time.perf_counter()
    parallel = _run_campaign_with(ParallelExecutor(jobs=jobs))
    parallel_s = time.perf_counter() - started

    assert parallel.results == serial.results  # bit-identical, always
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    with capsys.disabled():
        print(
            f"\ncampaign speedup: {speedup:.2f}x "
            f"(serial {serial_s:.2f}s, jobs={jobs} {parallel_s:.2f}s, "
            f"{cores} cores)"
        )
    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x campaign throughput at jobs=4 on {cores} cores, "
            f"measured {speedup:.2f}x"
        )
