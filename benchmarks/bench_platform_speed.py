"""Platform throughput: closed-loop steps per second, and campaign dispatch.

Not a paper table — this is the engineering bench that keeps the campaign
runtimes honest (the full Table VI grid is ~2,900 episodes).  The
serial-vs-parallel campaign benches measure the executor layer
(:mod:`repro.core.executor`): on an N-core machine the parallel backend
should approach Nx the serial episode throughput (>= 2x at ``jobs=4`` on
4 cores), while returning bit-identical results.  The serial-vs-batch
bench measures the vectorized lockstep engine
(:mod:`repro.sim.batch_state`) the same way and emits a JSON record of
both episodes/s figures (set ``REPRO_BENCH_JSON`` to also write it to a
file) so successive runs form a trajectory.
"""

import functools
import json
import os
import time

import pytest

from repro.attacks.campaign import CampaignSpec, EpisodeSpec
from repro.attacks.fi import FaultType
from repro.core.executor import (
    BatchExecutor,
    ParallelExecutor,
    PhaseProfile,
    SerialExecutor,
    available_cores,
)
from repro.core.experiment import run_campaign
from repro.core.platform import SimulationPlatform
from repro.ml.dataset import TraceDataset, collect_fault_free_traces
from repro.ml.mitigation import MitigationFactory
from repro.ml.trainer import TrainerConfig, train_baseline
from repro.safety.aebs import AebsConfig
from repro.safety.arbitration import InterventionConfig


def _run_episode(interventions):
    spec = EpisodeSpec(
        scenario_id="S1",
        initial_gap=60.0,
        fault_type=FaultType.NONE,
        repetition=0,
        seed=77,
    )
    platform = SimulationPlatform(spec, interventions, max_steps=2000)
    return platform.run()


def test_platform_step_rate_bare(benchmark):
    result = benchmark(lambda: _run_episode(InterventionConfig()))
    assert result.steps == 2000


def test_platform_step_rate_full_stack(benchmark):
    cfg = InterventionConfig(
        driver=True, safety_check=True, aeb=AebsConfig.INDEPENDENT
    )
    result = benchmark(lambda: _run_episode(cfg))
    assert result.steps == 2000


# --------------------------------------------------------------------- #
# Campaign dispatch: serial vs parallel executor throughput
# --------------------------------------------------------------------- #

#: Small-but-real campaign: 12 episodes x 2,000 steps of full-stack
#: closed-loop simulation (enough work per episode that dispatch overhead
#: is honest, small enough for CI).
_CAMPAIGN = CampaignSpec(
    fault_types=[FaultType.RELATIVE_DISTANCE],
    initial_gaps=(60.0,),
    repetitions=2,
    seed=2025,
)
_CAMPAIGN_CFG = InterventionConfig(driver=True, aeb=AebsConfig.INDEPENDENT)


def _run_campaign_with(executor):
    return run_campaign(
        _CAMPAIGN, _CAMPAIGN_CFG, executor=executor, max_steps=2000
    )


def test_campaign_throughput_serial(benchmark):
    campaign = benchmark.pedantic(
        lambda: _run_campaign_with(SerialExecutor()), rounds=1, iterations=1
    )
    assert len(campaign.results) == 12


def test_campaign_throughput_parallel(benchmark):
    jobs = min(4, available_cores())
    campaign = benchmark.pedantic(
        lambda: _run_campaign_with(ParallelExecutor(jobs=jobs)),
        rounds=1,
        iterations=1,
    )
    assert len(campaign.results) == 12


#: The >= 2x parallel-speedup bar needs >= 4 *physical* cores, and
#: ``available_cores()`` counts hyperthreads; 8 available cores is the
#: conservative proxy (>= 4 physical on SMT-2 hosts) above which the hard
#: assertion arms.  Below it the bench is report-only so CI stays
#: portable to small hosts.
_SPEEDUP_ASSERT_CORES = 8


def test_parallel_speedup_report(capsys):
    """Measure and print the serial-vs-parallel speedup directly.

    Bit-identity between the backends is asserted on every host; the
    >= 2x throughput bar cannot hold on < 4 physical cores (the ROADMAP
    note), so on hosts where ``available_cores()`` reports fewer than
    ``_SPEEDUP_ASSERT_CORES`` the ratio is reported without being
    enforced.
    """
    started = time.perf_counter()
    serial = _run_campaign_with(SerialExecutor())
    serial_s = time.perf_counter() - started

    cores = available_cores()
    jobs = min(4, cores)
    started = time.perf_counter()
    parallel = _run_campaign_with(ParallelExecutor(jobs=jobs))
    parallel_s = time.perf_counter() - started

    assert parallel.results == serial.results  # bit-identical, always
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    with capsys.disabled():
        print(
            f"\ncampaign speedup: {speedup:.2f}x "
            f"(serial {serial_s:.2f}s, jobs={jobs} {parallel_s:.2f}s, "
            f"{cores} cores)"
        )
        if cores < _SPEEDUP_ASSERT_CORES:
            print(
                f"report-only: available_cores()={cores} < "
                f"{_SPEEDUP_ASSERT_CORES}, the >= 2x bar is not armed"
            )
    if cores >= _SPEEDUP_ASSERT_CORES:
        assert speedup >= 2.0, (
            f"expected >= 2x campaign throughput at jobs=4 on {cores} cores, "
            f"measured {speedup:.2f}x"
        )


# --------------------------------------------------------------------- #
# Campaign dispatch: serial vs batch (vectorized lockstep) throughput
# --------------------------------------------------------------------- #

#: Batch-width campaign: 96 episodes stepped in lockstep.  The batch
#: engine amortises NumPy dispatch across lanes, so its advantage grows
#: with width — a dozen lanes roughly breaks even, campaign-scale widths
#: pull ahead (see the sim/batch_state module docstring).
_BATCH_CAMPAIGN = CampaignSpec(
    fault_types=[FaultType.DESIRED_CURVATURE, FaultType.MIXED],
    initial_gaps=(60.0,),
    repetitions=8,
    seed=2025,
)
_BATCH_STEPS = 1000


def _run_batch_campaign_with(executor):
    return run_campaign(
        _BATCH_CAMPAIGN, _CAMPAIGN_CFG, executor=executor, max_steps=_BATCH_STEPS
    )


def _phase_dict(profile):
    """Per-phase seconds (control / dynamics / post-step tail), rounded."""
    d = profile.as_dict()
    return {
        k: (round(v, 3) if isinstance(v, float) else v) for k, v in d.items()
    }


#: Unlike the process-pool bar above, the batch speedup is algorithmic —
#: NumPy dispatch amortised across 96 lanes on a *single* core — so it
#: does not need physical parallelism to hold.  It arms on any host with
#: at least 2 available cores; a 1-core report means an overcommitted /
#: throttled container where wall-clock ratios are not trustworthy, so
#: the bench stays report-only there.
_BATCH_ASSERT_CORES = 2


def test_batch_speedup_report(capsys):
    """Serial-vs-batch episodes/s, with a machine-readable JSON record.

    Bit-identity is asserted on every host.  The >= 2x throughput bar is
    enforced wherever ``available_cores() >= _BATCH_ASSERT_CORES``; the
    JSON line — also written to ``$REPRO_BENCH_JSON`` when set — is the
    durable record that seeds the bench trajectory.
    """
    serial_profile = PhaseProfile()
    started = time.perf_counter()
    serial = _run_batch_campaign_with(SerialExecutor(profile=serial_profile))
    serial_s = time.perf_counter() - started

    batch_profile = PhaseProfile()
    started = time.perf_counter()
    batch = _run_batch_campaign_with(BatchExecutor(profile=batch_profile))
    batch_s = time.perf_counter() - started

    assert batch.results == serial.results  # bit-identical, always
    episodes = len(serial.results)
    record = {
        "bench": "campaign_serial_vs_batch",
        "episodes": episodes,
        "max_steps": _BATCH_STEPS,
        "serial_s": round(serial_s, 3),
        "batch_s": round(batch_s, 3),
        "serial_eps_per_s": round(episodes / serial_s, 3),
        "batch_eps_per_s": round(episodes / batch_s, 3),
        "speedup": round(serial_s / batch_s, 3),
        "available_cores": available_cores(),
        "phases": {
            "serial": _phase_dict(serial_profile),
            "batch": _phase_dict(batch_profile),
        },
    }
    line = json.dumps(record, sort_keys=True)
    out_path = os.environ.get("REPRO_BENCH_JSON")
    if out_path:
        with open(out_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
    cores = record["available_cores"]
    speedup = serial_s / batch_s if batch_s > 0 else float("inf")
    with capsys.disabled():
        print(f"\n{line}")
        if cores < _BATCH_ASSERT_CORES:
            print(
                f"report-only: available_cores()={cores} < "
                f"{_BATCH_ASSERT_CORES}, the >= 2x batch bar is not armed"
            )
    if cores >= _BATCH_ASSERT_CORES:
        assert speedup >= 2.0, (
            f"expected >= 2x batch throughput at {episodes} lanes "
            f"({cores} cores), measured {speedup:.2f}x"
        )


# --------------------------------------------------------------------- #
# ML-arm campaign: serial vs batch vs batch x jobs (hybrid)
# --------------------------------------------------------------------- #

#: ML-arm campaign: every lane carries Algorithm 1 (LSTM forward + CUSUM)
#: on top of the ADAS stack.  Historically these lanes forced the whole
#: control phase scalar; the batched ML stage keeps them on the
#: vectorized path, and the batch x jobs hybrid stacks process
#: parallelism on top.
_ML_CAMPAIGN = CampaignSpec(
    fault_types=[FaultType.RELATIVE_DISTANCE],
    initial_gaps=(60.0,),
    repetitions=4,
    seed=2025,
)
_ML_CFG = InterventionConfig(ml=True, driver=True, aeb=AebsConfig.INDEPENDENT)
_ML_STEPS = 1000


@functools.lru_cache(maxsize=1)
def _ml_factory():
    """Train a tiny real baseline once per bench session.

    Trained weights (not a synthetic stand-in) so the bench exercises the
    production path end to end: trace collection, normalisation scalers,
    and an LSTM whose predictions keep the CUSUM near its idle regime.
    """
    traces = collect_fault_free_traces(
        scenario_ids=("S1",), initial_gaps=(60.0,), seeds=(11,), max_steps=2500
    )
    dataset = TraceDataset(traces, stride=20)
    config = TrainerConfig(hidden_sizes=(8, 6), epochs=3, batch_size=32, stride=20)
    return MitigationFactory(train_baseline(config, dataset=dataset))


def _run_ml_campaign_with(executor, jobs=None):
    return run_campaign(
        _ML_CAMPAIGN,
        _ML_CFG,
        ml_factory=_ml_factory(),
        executor=executor,
        jobs=jobs,
        max_steps=_ML_STEPS,
    )


#: The hybrid's >1x-over-batch bar needs >= 2 *physical* cores and
#: ``available_cores()`` counts hyperthreads: 4 available cores is the
#: conservative proxy on SMT-2 hosts, mirroring ``_SPEEDUP_ASSERT_CORES``.
_HYBRID_ASSERT_CORES = 4


def test_ml_batch_and_hybrid_speedup_report(capsys):
    """ML-arm episodes/s: serial vs batch vs batch x jobs.

    Bit-identity of both accelerated backends against serial is asserted
    on every host.  The hybrid's >1x bar over single-process batch is
    armed at ``available_cores() >= _HYBRID_ASSERT_CORES`` (>= 2 physical
    cores on SMT-2 hosts); the batch-vs-serial ratio is report-only here
    because the LSTM forward dominates ML-arm cost and falls back to
    per-lane slices wherever BLAS row-batching is not bit-identical.
    """
    serial_profile = PhaseProfile()
    started = time.perf_counter()
    serial = _run_ml_campaign_with(SerialExecutor(profile=serial_profile))
    serial_s = time.perf_counter() - started

    batch_profile = PhaseProfile()
    started = time.perf_counter()
    batch = _run_ml_campaign_with(BatchExecutor(profile=batch_profile))
    batch_s = time.perf_counter() - started

    cores = available_cores()
    jobs = min(4, cores)
    started = time.perf_counter()
    hybrid = _run_ml_campaign_with("batch", jobs=jobs)
    hybrid_s = time.perf_counter() - started

    assert batch.results == serial.results  # bit-identical, always
    assert hybrid.results == serial.results  # bit-identical, always
    episodes = len(serial.results)
    record = {
        "bench": "campaign_ml_serial_vs_batch_vs_hybrid",
        "episodes": episodes,
        "max_steps": _ML_STEPS,
        "jobs": jobs,
        "serial_s": round(serial_s, 3),
        "batch_s": round(batch_s, 3),
        "hybrid_s": round(hybrid_s, 3),
        "serial_eps_per_s": round(episodes / serial_s, 3),
        "batch_eps_per_s": round(episodes / batch_s, 3),
        "hybrid_eps_per_s": round(episodes / hybrid_s, 3),
        "batch_speedup": round(serial_s / batch_s, 3),
        "hybrid_speedup": round(serial_s / hybrid_s, 3),
        "hybrid_over_batch": round(batch_s / hybrid_s, 3),
        "available_cores": cores,
        "phases": {
            "serial": _phase_dict(serial_profile),
            "batch": _phase_dict(batch_profile),
        },
    }
    line = json.dumps(record, sort_keys=True)
    out_path = os.environ.get("REPRO_BENCH_JSON")
    if out_path:
        with open(out_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
    hybrid_over_batch = batch_s / hybrid_s if hybrid_s > 0 else float("inf")
    with capsys.disabled():
        print(f"\n{line}")
        if cores < _HYBRID_ASSERT_CORES:
            print(
                f"report-only: available_cores()={cores} < "
                f"{_HYBRID_ASSERT_CORES}, the hybrid >1x bar is not armed"
            )
    if cores >= _HYBRID_ASSERT_CORES:
        assert hybrid_over_batch > 1.0, (
            f"expected the batch x jobs hybrid (jobs={jobs}) to beat "
            f"single-process batch on {cores} cores, measured "
            f"{hybrid_over_batch:.2f}x"
        )
