"""Platform throughput: closed-loop steps per second.

Not a paper table — this is the engineering bench that keeps the campaign
runtimes honest (the full Table VI grid is ~2,900 episodes).
"""

import pytest

from repro.attacks.campaign import EpisodeSpec
from repro.attacks.fi import FaultType
from repro.core.platform import SimulationPlatform
from repro.safety.aebs import AebsConfig
from repro.safety.arbitration import InterventionConfig


def _run_episode(interventions):
    spec = EpisodeSpec(
        scenario_id="S1",
        initial_gap=60.0,
        fault_type=FaultType.NONE,
        repetition=0,
        seed=77,
    )
    platform = SimulationPlatform(spec, interventions, max_steps=2000)
    return platform.run()


def test_platform_step_rate_bare(benchmark):
    result = benchmark(lambda: _run_episode(InterventionConfig()))
    assert result.steps == 2000


def test_platform_step_rate_full_stack(benchmark):
    cfg = InterventionConfig(
        driver=True, safety_check=True, aeb=AebsConfig.INDEPENDENT
    )
    result = benchmark(lambda: _run_episode(cfg))
    assert result.steps == 2000
