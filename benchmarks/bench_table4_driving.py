"""Table IV — ADAS driving performance without attacks.

Regenerates: hazards/accidents per scenario, mean following distance,
hardest-brake value, min TTC and min t_fcw over the fault-free grid
(S1-S6 x {60 m, 230 m} x repetitions).

Paper shape asserted:
* S4 (sudden stop) is the only scenario with frequent accidents;
* following distances during stable cruise are ~24-34 m;
* S4 shows the hardest braking (~87-92 % vs ~16-58 % elsewhere);
* min t_fcw tracks 2.5 + v_min/4.9.
"""

from _bench_utils import repetitions, run_once

from repro import CampaignSpec, FaultType, InterventionConfig, run_campaign
from repro.analysis.tables import render_table4, table4_driving_performance


def test_table4_driving_performance(benchmark):
    spec = CampaignSpec(
        fault_types=[FaultType.NONE], repetitions=repetitions(3), seed=2025
    )

    def run():
        return run_campaign(spec, InterventionConfig())

    campaign = run_once(benchmark, run)
    rows = table4_driving_performance(campaign)
    print()
    print(render_table4(rows))

    by_id = {r.scenario_id: r for r in rows}
    # S4 is the dangerous scenario even without attacks (paper: 10/20).
    assert by_id["S4"].accident_count > 0
    for sid in ("S1", "S2", "S6"):
        assert by_id[sid].accident_count == 0
    # Hardest braking happens in S4.
    assert by_id["S4"].hardest_brake_pct == max(r.hardest_brake_pct for r in rows)
    assert by_id["S4"].hardest_brake_pct > 80.0
    # Stable following distances in the paper's 23-34 m band.
    for sid in ("S1", "S5", "S6"):
        assert 20.0 < by_id[sid].following_distance < 36.0
    # min TTC ordering: S4 tightest.
    assert by_id["S4"].min_ttc == min(r.min_ttc for r in rows)
