"""Make the benchmark helpers importable when pytest runs this directory."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
