"""Fig. 6 — speed and relative distance under an RD fault injection.

Regenerates the attack trace: the perceived RD diverges (+10/+15/+38 m)
from the true gap, the lead drops out of perception inside the ~2 m blind
range, the ACC re-accelerates, and the episode ends in a forward collision.
"""

from _bench_utils import run_once

from repro.analysis.figures import fig6_series
from repro.analysis.render import ascii_plot
from repro.core.hazards import AccidentType


def test_fig6_attack_trace(benchmark):
    series = run_once(benchmark, lambda: fig6_series(scenario_id="S1", seed=2025))

    t = series.trace
    print()
    print(ascii_plot(t.time, t.ego_speed, label="Fig6 ego speed [m/s]"))
    print(ascii_plot(t.time, t.true_gap, label="Fig6 true RD [m]"))
    print(ascii_plot(t.time, t.perceived_rd, label="Fig6 perceived RD [m]"))

    # The attack activated and ended in a forward collision.
    assert series.result.attack_activated
    assert series.result.accident is AccidentType.A1

    # Perceived RD inflated above truth while the attack was active.
    divergences = [
        p - g
        for p, g, a in zip(t.perceived_rd, t.true_gap, t.attack_active)
        if a and p == p and g == g
    ]
    assert divergences and max(divergences) >= 9.0

    # Close-range detection loss: perception dropped the lead (NaN RD)
    # while the true gap was still positive (the paper's Fig. 6 cascade).
    lost = [
        g for p, g in zip(t.perceived_rd, t.true_gap) if p != p and g == g and g < 3.0
    ]
    assert lost

    # Once the lead is lost, braking is released (and, given time, turns
    # into re-acceleration) instead of continuing to a stop — the collision
    # arrives while the ACC ramps back toward its cruise set-speed.
    final_accels = [a for a, p in zip(t.accel, t.perceived_rd) if p != p]
    assert final_accels and max(final_accels) > min(final_accels) + 1.5
