"""Table VI — fault injection with and without safety interventions.

The paper's central table: for each fault type (relative distance, desired
curvature, mixed) and each intervention configuration, the A1/A2 split,
the prevention rate, average mitigation times and trigger rates.

Configurations (paper rows):
    none | driver+check | driver+check+AEB-comp | driver+check+AEB-indep |
    AEB-comp | AEB-indep | driver | ML

Paper shapes asserted:
1. without interventions every attack ends in an accident: RD attacks are
   A1-dominated, curvature attacks are 100 % A2, mixed attacks are
   A2-dominated;
2. AEB with the independent sensor prevents ~100 % of RD-attack
   collisions, AEB on compromised data collapses;
3. the driver prevents a substantial share across fault types;
4. the ML baseline trades A1 accidents for new A2 accidents on RD attacks
   (Observation 6) and does not beat AEB-independent.
"""

import os

import pytest
from _bench_utils import repetitions, run_once

from repro import CampaignSpec, InterventionConfig, run_campaign
from repro.analysis.tables import render_table6, table6_row
from repro.core.metrics import group_by
from repro.safety.aebs import AebsConfig

CONFIGS = [
    InterventionConfig(name="none"),
    InterventionConfig(driver=True, safety_check=True, name="driver+check"),
    InterventionConfig(
        driver=True, safety_check=True, aeb=AebsConfig.COMPROMISED,
        name="driver+check+aeb_comp",
    ),
    InterventionConfig(
        driver=True, safety_check=True, aeb=AebsConfig.INDEPENDENT,
        name="driver+check+aeb_indep",
    ),
    InterventionConfig(aeb=AebsConfig.COMPROMISED, name="aeb_comp"),
    InterventionConfig(aeb=AebsConfig.INDEPENDENT, name="aeb_indep"),
    InterventionConfig(driver=True, name="driver"),
    InterventionConfig(ml=True, name="ml"),
]


def _ml_factory():
    from repro.ml import MitigationController, TrainerConfig, load_or_train_cached

    baseline = load_or_train_cached(TrainerConfig())
    return lambda: MitigationController(baseline)


def test_table6_interventions(benchmark):
    spec = CampaignSpec(repetitions=repetitions(1), seed=2025)
    include_ml = os.environ.get("REPRO_SKIP_ML") != "1"

    def run():
        rows = []
        by_config = {}
        for cfg in CONFIGS:
            if cfg.ml and not include_ml:
                continue
            ml_factory = _ml_factory() if cfg.ml else None
            campaign = run_campaign(spec, cfg, ml_factory=ml_factory)
            groups = group_by(campaign.results, "fault_type")
            for fault in sorted(groups):
                rows.append(table6_row(groups[fault], cfg.label()))
            by_config[cfg.label()] = campaign
        return rows, by_config

    rows, by_config = run_once(benchmark, run)
    rows.sort(key=lambda r: (r.fault_type, r.intervention))
    print()
    print(render_table6(rows))

    cell = {(r.fault_type, r.intervention): r for r in rows}

    # --- Shape 1: no interventions -> universal accidents ----------------
    none_rd = cell[("relative_distance", "none")]
    assert none_rd.prevented_pct == 0.0
    assert none_rd.a1_pct >= 80.0  # paper: 82.5 % A1
    none_curv = cell[("desired_curvature", "none")]
    assert none_curv.a1_pct + none_curv.a2_pct >= 95.0  # all runs crash
    assert none_curv.a2_pct >= 85.0  # paper: 100 % A2
    none_mixed = cell[("mixed", "none")]
    assert none_mixed.a2_pct >= 80.0  # paper: 95.8 % A2

    # --- Shape 2: independent AEB sensing is decisive ---------------------
    assert cell[("relative_distance", "aeb_indep")].prevented_pct >= 90.0
    assert (
        cell[("relative_distance", "aeb_comp")].prevented_pct
        <= cell[("relative_distance", "aeb_indep")].prevented_pct - 50.0
    )
    assert cell[("relative_distance", "driver+check+aeb_indep")].prevented_pct >= 90.0

    # --- Shape 3: the driver prevents a substantial share -----------------
    assert cell[("relative_distance", "driver")].prevented_pct >= 25.0
    assert cell[("desired_curvature", "driver")].prevented_pct >= 25.0
    assert cell[("mixed", "driver")].prevented_pct >= 25.0

    # --- Shape 4: ML converts A1 into A2 on RD attacks (Obs. 6) -----------
    if include_ml:
        ml_rd = cell[("relative_distance", "ml")]
        assert ml_rd.a1_pct < none_rd.a1_pct  # fewer forward collisions
        assert ml_rd.a2_pct > none_rd.a2_pct  # new lateral accidents
        assert (
            ml_rd.prevented_pct
            <= cell[("relative_distance", "aeb_indep")].prevented_pct
        )
