"""Ablation benches for the design decisions called out in DESIGN.md.

* **Close-range perception blind spot** — disabling the <2 m detection
  failure removes the Fig. 6 re-acceleration cascade (the collision gets
  softer or disappears under an RD attack even without interventions).
* **Intervention priority order** — letting the driver steer *through* an
  active AEB manoeuvre (``aeb_overrides_driver=False``) changes mixed-
  attack outcomes; the paper's Observation 4 calls for exactly this kind
  of coordination.
* **CUSUM threshold** — sweeping Algorithm 1's tau shows the
  detection-latency/false-positive trade-off.
"""

from _bench_utils import repetitions, run_once

from repro import CampaignSpec, FaultType, InterventionConfig, run_campaign
from repro.adas.perception import PerceptionParams
from repro.analysis.render import format_table
from repro.attacks.campaign import EpisodeSpec
from repro.core.platform import SimulationPlatform
from repro.safety.aebs import AebsConfig


def test_ablation_blind_spot(benchmark):
    """Fig. 6 mechanism: remove the blind range, measure impact speed."""

    def run():
        outcomes = {}
        for label, blind in (("blind@2m", 2.0), ("no-blind", 0.0)):
            impacts = []
            for seed in (11, 23, 37):
                spec = EpisodeSpec(
                    scenario_id="S1",
                    initial_gap=60.0,
                    fault_type=FaultType.RELATIVE_DISTANCE,
                    repetition=0,
                    seed=seed,
                )
                platform = SimulationPlatform(
                    spec,
                    InterventionConfig(),
                    perception_params=PerceptionParams(blind_range=blind),
                )
                platform.run()
                collision = platform.world.collision
                impacts.append(collision.relative_speed if collision else 0.0)
            outcomes[label] = sum(impacts) / len(impacts)
        return outcomes

    outcomes = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["Perception", "mean impact speed [m/s]"],
            [[k, v] for k, v in outcomes.items()],
            title="Ablation: close-range blind spot (RD attack, no interventions)",
        )
    )
    # Without the blind spot the ACC keeps braking to the end: softer hits.
    assert outcomes["no-blind"] <= outcomes["blind@2m"] + 0.5


def test_ablation_priority_order(benchmark):
    """Observation 4: AEB-overrides-driver vs driver-retains-steering."""
    spec = CampaignSpec(
        fault_types=[FaultType.MIXED], repetitions=repetitions(2), seed=2025
    )

    def run():
        rows = {}
        for label, override in (("aeb_overrides", True), ("driver_retains", False)):
            cfg = InterventionConfig(
                driver=True,
                safety_check=True,
                aeb=AebsConfig.INDEPENDENT,
                aeb_overrides_driver=override,
                name=label,
            )
            rows[label] = run_campaign(spec, cfg).overall()
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["Priority policy", "prevented", "A2 rate", "AEB trigger"],
            [
                [k, f"{100*v.prevented_rate:.1f}%", f"{100*v.a2_rate:.1f}%",
                 f"{100*v.aeb_trigger_rate:.1f}%"]
                for k, v in rows.items()
            ],
            title="Ablation: intervention priority under mixed attacks",
        )
    )
    # Both policies must still mitigate a substantial share.
    for stats in rows.values():
        assert stats.prevented_rate >= 0.25


def test_ablation_cusum_threshold(benchmark):
    """Algorithm 1 tau sweep: activation count vs threshold."""
    import numpy as np

    from repro.adas.controlsd import AdasCommand
    from repro.ml.mitigation import MitigationController, MitigationParams

    class _Oracle:
        """Predicts a constant brake (test double; avoids LSTM training)."""

        def predict(self, window):
            return np.array([-2.0, 0.0])

    def run():
        counts = {}
        for tau in (1.0, 3.0, 10.0):
            ctl = MitigationController(_Oracle(), MitigationParams(tau=tau))
            features = [20.0, 50.0, 0.9, 0.9, 0.0, 0.0]
            # 30 diverging cycles, then 30 agreeing ones, repeated.
            for cycle in range(300):
                diverging = (cycle // 30) % 2 == 0
                y_op = AdasCommand(2.0 if diverging else -2.0, 0.0)
                ctl.step(features, y_op, 0.01)
            counts[tau] = ctl.activations
        return counts

    counts = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["tau", "recovery activations"],
            [[k, v] for k, v in counts.items()],
            title="Ablation: CUSUM threshold sensitivity",
        )
    )
    # Lower thresholds can only activate at least as often.
    assert counts[1.0] >= counts[3.0] >= counts[10.0]
    assert counts[1.0] >= 1
