"""Table VII — prevention rate vs. driver reaction time (driver-only).

Re-runs the attack grid with only driver interventions enabled, sweeping
the reaction time over the paper's 1.0-3.5 s range.

Paper shape asserted: alert drivers (< 2 s) achieve notably better
prevention than slow drivers (>= 3 s) for every fault type (the paper's
Observation 5 and Table VII trend).
"""

from _bench_utils import repetitions, run_once

from repro import CampaignSpec, InterventionConfig, run_campaign
from repro.analysis.tables import render_table7, table7_reaction_sweep

REACTION_TIMES = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5)


def test_table7_reaction_time_sweep(benchmark):
    spec = CampaignSpec(repetitions=repetitions(1), seed=2025)

    def run():
        sweeps = {}
        for rt in REACTION_TIMES:
            cfg = InterventionConfig(
                driver=True, driver_reaction_time=rt, name=f"driver@{rt}s"
            )
            sweeps[rt] = run_campaign(spec, cfg)
        return sweeps

    sweeps = run_once(benchmark, run)
    table = table7_reaction_sweep(sweeps)
    print()
    print(render_table7(table))

    for fault, per_rt in table.items():
        fast = (per_rt[1.0] + per_rt[1.5]) / 2
        slow = (per_rt[3.0] + per_rt[3.5]) / 2
        assert fast >= slow, f"{fault}: fast {fast} < slow {slow}"
        # Alert drivers prevent a substantial share (paper: 53-77 % at 1 s).
        assert per_rt[1.0] >= 30.0, f"{fault}: {per_rt[1.0]}% at 1.0s"
