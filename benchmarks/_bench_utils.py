"""Shared helpers for the benchmark suite.

Benchmarks regenerate the paper's tables and figures.  They default to a
reduced repetition count so ``pytest benchmarks/ --benchmark-only``
finishes in minutes; set ``REPRO_FULL=1`` to run the paper's full
10-repetition campaigns, or ``REPRO_REPS=<n>`` for a custom count.
"""

from __future__ import annotations

import os


def repetitions(default: int = 2) -> int:
    """Campaign repetitions per grid cell for this run.

    Raises:
        ValueError: on a malformed or non-positive ``REPRO_REPS``.
    """
    if os.environ.get("REPRO_FULL") == "1":
        return 10
    raw = os.environ.get("REPRO_REPS")
    if raw is None:
        return default
    try:
        reps = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_REPS must be a positive integer (campaign repetitions "
            f"per grid cell), got {raw!r}"
        ) from None
    if reps < 1:
        raise ValueError(
            f"REPRO_REPS must be >= 1 (campaign repetitions per grid cell), "
            f"got {reps}"
        )
    return reps


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Campaign benches are far too heavy for pytest-benchmark's default
    auto-calibrated rounds.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
