"""Table VIII — hazard prevention rate vs. road friction.

Re-runs the campaigns under reduced road friction (dry / -25 % / -50 % /
-75 %) with the paper's footnoted intervention set (driver + safety check
+ AEB on compromised data).

Paper shape asserted: prevention degrades as friction falls, and the
curvature/lateral fault type collapses on icy roads (-75 %), while
moderate rain (-50 %) retains most of the mitigation capability.
"""

from _bench_utils import repetitions, run_once

from repro import CampaignSpec, FaultType, InterventionConfig, run_campaign
from repro.analysis.tables import render_table8, table8_friction_sweep
from repro.safety.aebs import AebsConfig
from repro.sim.weather import FRICTION_CONDITIONS


def test_table8_friction_sweep(benchmark):
    cfg = InterventionConfig(
        driver=True, safety_check=True, aeb=AebsConfig.COMPROMISED,
        name="driver+check+aeb_comp",
    )

    def run():
        sweeps = {}
        for label, condition in FRICTION_CONDITIONS.items():
            spec = CampaignSpec(
                fault_types=[FaultType.RELATIVE_DISTANCE, FaultType.DESIRED_CURVATURE],
                repetitions=repetitions(1),
                seed=2025,
                friction=condition,
            )
            sweeps[label] = run_campaign(spec, cfg)
        return sweeps

    sweeps = run_once(benchmark, run)
    table = table8_friction_sweep(sweeps)
    print()
    print(render_table8(table))

    for fault, per_friction in table.items():
        # Prevention never improves when friction is removed entirely.
        assert per_friction["default"] >= per_friction["75% off"] - 1e-9, fault
    # Lateral mitigation collapses on ice (paper: 47 % -> 18 %).
    curv = table["desired_curvature"]
    assert curv["75% off"] <= max(curv["default"], 1.0) * 0.8 + 1e-9
