"""Table V — minimal distance to lane lines per scenario (fault-free).

Paper shape asserted: minima fall in the 0.05-0.7 m band (imperfect lane
centring), and no fault-free run actually departs the lane.
"""

from _bench_utils import repetitions, run_once

from repro import CampaignSpec, FaultType, InterventionConfig, run_campaign
from repro.analysis.tables import render_table5, table5_lane_distance


def test_table5_lane_distance(benchmark):
    spec = CampaignSpec(
        fault_types=[FaultType.NONE], repetitions=repetitions(3), seed=2025
    )

    def run():
        return run_campaign(spec, InterventionConfig())

    campaign = run_once(benchmark, run)
    distances = table5_lane_distance(campaign)
    print()
    print(render_table5(distances))

    assert set(distances) == {"S1", "S2", "S3", "S4", "S5", "S6"}
    for sid, dist in distances.items():
        assert 0.05 < dist < 0.95, f"{sid} min lane distance {dist}"
