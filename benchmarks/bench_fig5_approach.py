"""Fig. 5 — speed and lane-line distance while approaching the lead.

Regenerates the fault-free approach traces for all six scenarios and
prints compact ASCII panels of the S1 speed profile.

Paper shape asserted: the S1 approach shows the documented hard speed drop
(the paper quotes 21.7 -> 9.6 m/s, a ~12 m/s sustained drop; we assert a
drop of at least 6 m/s) followed by stable following, and lane-line
distances stay positive in every scenario.
"""

from _bench_utils import run_once

from repro.analysis.figures import fig5_series, speed_drop
from repro.analysis.render import ascii_plot


def test_fig5_approach_traces(benchmark):
    series = run_once(benchmark, lambda: fig5_series(seed=2025, initial_gap=60.0))

    s1 = series["S1"]
    print()
    print(ascii_plot(s1.trace.time, s1.trace.ego_speed, label="Fig5/S1 ego speed [m/s]"))
    print(
        ascii_plot(
            s1.trace.time, s1.trace.lane_distance, label="Fig5/S1 lane distance [m]"
        )
    )

    # The aggressive approach braking (paper: 21.7 -> 9.6 m/s).
    assert speed_drop(s1) > 6.0
    # After the drop the ego settles near the lead speed (~13.4 m/s).
    tail = s1.trace.ego_speed[-50:]
    assert 10.0 < sum(tail) / len(tail) < 16.0
    # Lane keeping never fails in benign runs.
    for sid, s in series.items():
        if sid == "S4":
            continue  # S4 may end in a collision (Table IV)
        assert min(s.trace.lane_distance) > 0.0, sid
