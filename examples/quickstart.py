#!/usr/bin/env python
"""Quickstart: one adversarial-patch attack episode, with and without AEB.

Runs the paper's headline situation — a relative-distance patch on the
rear of the lead vehicle while the ego approaches at 50 mph — first with
no safety interventions (ends in a forward collision), then with an AEBS
driven by an independent sensor (prevented).

Run:
    python examples/quickstart.py
"""

from repro import AebsConfig, EpisodeSpec, FaultType, InterventionConfig, run_episode


def describe(label, result):
    outcome = result.accident.value if result.accident else "no accident"
    print(f"\n=== {label} ===")
    print(f"  outcome:            {outcome}")
    if result.accident_time is not None:
        print(f"  accident time:      {result.accident_time:.2f} s")
    print(f"  attack first active: {result.attack_first_activation}")
    print(f"  min TTC:            {result.min_ttc:.2f} s")
    print(f"  hardest brake:      {100 * result.hardest_brake_fraction:.1f} %")
    print(f"  AEB triggered:      {result.aeb.triggered}")
    if result.aeb.triggered:
        print(f"  AEB braking time:   {result.aeb.active_duration:.2f} s")
    print(f"  prevented:          {result.prevented}")


def main():
    spec = EpisodeSpec(
        scenario_id="S1",          # lead cruises at 30 mph
        initial_gap=60.0,           # metres
        fault_type=FaultType.RELATIVE_DISTANCE,
        repetition=0,
        seed=2025,
    )

    unprotected = run_episode(spec, InterventionConfig())
    describe("No safety interventions", unprotected)
    assert unprotected.accident is not None

    protected = run_episode(spec, InterventionConfig(aeb=AebsConfig.INDEPENDENT))
    describe("AEB with independent sensor", protected)
    assert protected.accident is None

    print(
        "\nThe same attack on identical initial conditions: the independent-"
        "sensor AEBS turns a certain collision into a prevented incident."
    )


if __name__ == "__main__":
    main()
