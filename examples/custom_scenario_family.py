#!/usr/bin/env python
"""Registering a custom scenario family and sweeping its parameters.

The scenario-family registry
----------------------------

Episode construction is pluggable (:mod:`repro.sim.families`): a
:class:`~repro.sim.families.ScenarioFamily` declares a typed parameter
schema and a world constructor, and registering it makes the family
enumerable (``repro scenarios list``), sweepable (``repro campaign
--scenario F --scenario-param k=v1,v2``), cacheable (each sweep point is
part of the episode identity, so the digest-keyed cache just works) and
reportable (``repro report --family F``) with no further wiring.

This script:

1. defines a **lead-oscillation** family (a lead vehicle that repeatedly
   slows and recovers — stop-and-go traffic) with two typed axes;
2. registers it and shows the registry/catalog view;
3. sweeps ``slowdown_mph`` through the ordinary campaign engine —
   sharding, resume and the content-digest cache all apply unchanged;
4. prints the per-point outcome table the report pipeline would embed.

Everything is deterministic in ``(params, seed)``: draw all randomness
from the handles :func:`~repro.sim.families.scenario_base` returns.
"""

from __future__ import annotations

import tempfile

from repro.analysis.tables import family_sweep_rows, render_family_sweep
from repro.attacks.campaign import CampaignSpec
from repro.attacks.fi import FaultType
from repro.core.cache import CampaignCache
from repro.core.experiment import run_campaign
from repro.safety.arbitration import InterventionConfig
from repro.sim.agents import AgentBinding, SpeedChangeBehavior
from repro.sim.families import (
    ParamSpec,
    ScenarioFamily,
    family_catalog,
    lead_start_s,
    register_family,
    scenario_base,
)
from repro.sim.vehicle import KinematicActor
from repro.utils.units import mph_to_ms


class LeadOscillationFamily(ScenarioFamily):
    """Stop-and-go traffic: the lead sheds ``slowdown_mph`` when the ego
    closes in, then holds the lower speed."""

    family_id = "lead-oscillation"
    title = "Lead slows by a configurable amount as the ego closes in."
    params = (
        ParamSpec(
            "slowdown_mph",
            kind="float",
            default=10.0,
            minimum=2.0,
            maximum=25.0,
            help="speed shed by the lead when triggered [mph]",
        ),
        ParamSpec(
            "cruise_mph",
            kind="float",
            default=35.0,
            minimum=15.0,
            maximum=60.0,
            help="lead cruise speed before the slowdown [mph]",
        ),
    )
    default_initial_gaps = (60.0,)
    report_axes = (("slowdown_mph", (5.0, 10.0, 20.0)),)

    def build(self, config):
        world, rng, jit = scenario_base(config)
        params = dict(config.params)
        v_cruise = mph_to_ms(params["cruise_mph"]) + jit(0.45)
        v_low = mph_to_ms(params["cruise_mph"] - params["slowdown_mph"])
        # lead_start_s places the lead's rear bumper at the gap, matching
        # every built-in family's reading of initial_gap.
        lead_s = lead_start_s(world.ego, config.initial_gap + jit(4.0))
        lead = KinematicActor(world.road, s=lead_s, d=0.0, speed=v_cruise, name="LV")
        behavior = SpeedChangeBehavior(
            initial_speed=v_cruise,
            final_speed=max(v_low, 0.0),
            trigger_gap=50.0 + jit(5.0),
            rate=2.5,
        )
        world.add_agent(AgentBinding(lead, behavior))
        return world


def main() -> None:
    register_family(LeadOscillationFamily())

    print("== registry ==")
    for entry in family_catalog():
        if entry["id"] == "lead-oscillation":
            print(entry["id"], "-", entry["title"])
            for param in entry["params"]:
                print(f"  {param['name']}: {param['kind']}, default {param['default']}")

    # Sweep the slowdown axis through the standard campaign engine, one
    # campaign per sweep point (matching how the report's family arms are
    # keyed).  The reduced max_steps keeps this demo quick; drop it for
    # real studies.
    interventions = InterventionConfig(driver=True)

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = CampaignCache(cache_dir)
        print("\n== sweep (first run executes) ==")
        pairs = []
        for value in (5.0, 10.0, 20.0):
            point = CampaignSpec(
                fault_types=[FaultType.RELATIVE_DISTANCE],
                scenario_ids=["lead-oscillation"],
                initial_gaps=[60.0],
                repetitions=2,
                seed=2025,
                param_axes={"slowdown_mph": (value,)},
            )
            result = run_campaign(point, interventions, cache=cache, max_steps=3000)
            pairs.append((f"slowdown_mph={value}", result))
        print(render_family_sweep("lead-oscillation", family_sweep_rows(pairs)))

        print("\n== repeated sweep point (served from the digest cache) ==")
        # Same spec -> same content digest -> zero episodes execute.
        point = CampaignSpec(
            fault_types=[FaultType.RELATIVE_DISTANCE],
            scenario_ids=["lead-oscillation"],
            initial_gaps=[60.0],
            repetitions=2,
            seed=2025,
            param_axes={"slowdown_mph": (10.0,)},
        )
        cached = run_campaign(point, interventions, cache=cache, max_steps=3000)
        print(f"slowdown_mph=10.0 again: {len(cached.results)} episodes, "
              f"{len(cache)} cache entries (unchanged)")


if __name__ == "__main__":
    main()
