#!/usr/bin/env python
"""Export the Fig. 5 / Fig. 6 traces as CSV files and ASCII previews.

Produces ``fig5_<scenario>.csv`` for every scenario plus ``fig6.csv`` in
the chosen output directory, ready for external plotting, and prints quick
ASCII previews of the headline panels.

Run:
    python examples/export_traces.py [output_dir]
"""

import os
import sys

from repro.analysis.figures import fig5_series, fig6_series, speed_drop
from repro.analysis.render import ascii_plot


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "traces"
    os.makedirs(out_dir, exist_ok=True)

    print("tracing fault-free approaches (Fig. 5) ...")
    series = fig5_series(seed=2025, initial_gap=60.0)
    for sid, s in sorted(series.items()):
        path = os.path.join(out_dir, f"fig5_{sid}.csv")
        with open(path, "w") as handle:
            handle.write(s.to_csv())
        print(
            f"  {path}: {len(s.trace.time)} samples, "
            f"speed drop {speed_drop(s):.1f} m/s, "
            f"outcome {s.result.accident.value if s.result.accident else 'ok'}"
        )

    print("\ntracing the RD attack (Fig. 6) ...")
    attack = fig6_series(scenario_id="S1", seed=2025, initial_gap=60.0)
    path = os.path.join(out_dir, "fig6.csv")
    with open(path, "w") as handle:
        handle.write(attack.to_csv())
    print(f"  {path}: outcome {attack.result.accident}")

    s1 = series["S1"]
    print()
    print(ascii_plot(s1.trace.time, s1.trace.ego_speed, label="Fig5/S1 speed [m/s]"))
    print()
    print(ascii_plot(attack.trace.time, attack.trace.true_gap, label="Fig6 true RD [m]"))


if __name__ == "__main__":
    main()
