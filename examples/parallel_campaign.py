#!/usr/bin/env python
"""Parallel campaign execution and JSONL result caching, end to end.

Walks through the campaign execution engine (:mod:`repro.core.executor`):

1. run a small fault-injection campaign serially;
2. run the *same* campaign on a process pool (``jobs=N``) and verify the
   results are bit-identical — episode seeds are order-independent, so
   parallelism only changes wall-clock time, never outcomes;
3. save the campaign as JSONL and reload it, the cache-and-resume path
   that avoids re-simulating 10,000-step episodes;
4. aggregate the reloaded results into the paper's Table VI quantities.

This is the single-machine layer; for the multi-machine workflow on top of
it — shard -> merge -> report, plus resume and the digest-keyed result
cache — see the "Distributed campaigns" walkthrough in
:mod:`examples.sharded_campaign`.

Run:
    python examples/parallel_campaign.py
    REPRO_JOBS=8 python -m repro table6   # same engine from the CLI
"""

import os
import sys
import tempfile
import time

from repro import (
    AebsConfig,
    CampaignResult,
    CampaignSpec,
    FaultType,
    InterventionConfig,
    ParallelExecutor,
    SerialExecutor,
    run_campaign,
)


def main():
    # A reduced Table VI-style grid: one fault type, every scenario,
    # one gap, two repetitions -> 12 episodes.
    spec = CampaignSpec(
        fault_types=[FaultType.RELATIVE_DISTANCE],
        initial_gaps=(60.0,),
        repetitions=2,
        seed=2025,
    )
    safety = InterventionConfig(driver=True, aeb=AebsConfig.INDEPENDENT)

    def progress(done, total):
        print(f"\r  {done}/{total} episodes", end="", file=sys.stderr)
        if done == total:
            print(file=sys.stderr)

    print("=== 1. serial run ===")
    started = time.perf_counter()
    serial = run_campaign(
        spec, safety, executor=SerialExecutor(), progress=progress, max_steps=4000
    )
    serial_s = time.perf_counter() - started
    print(f"  {len(serial.results)} episodes in {serial_s:.2f} s")

    jobs = min(4, os.cpu_count() or 1)
    print(f"=== 2. parallel run (jobs={jobs}) ===")
    started = time.perf_counter()
    parallel = run_campaign(
        spec,
        safety,
        executor=ParallelExecutor(jobs=jobs),
        progress=progress,
        max_steps=4000,
    )
    parallel_s = time.perf_counter() - started
    print(f"  {len(parallel.results)} episodes in {parallel_s:.2f} s")

    assert parallel.results == serial.results
    print(f"  bit-identical results; speedup {serial_s / parallel_s:.2f}x")

    print("=== 3. JSONL save / load ===")
    path = os.path.join(tempfile.mkdtemp(), "campaign.jsonl")
    count = serial.save(path)
    reloaded = CampaignResult.load(path)
    assert reloaded.results == serial.results
    print(f"  {count} records -> {path} -> reloaded identically")

    print("=== 4. aggregate the cached campaign ===")
    stats = reloaded.overall()
    print(f"  intervention:     {reloaded.intervention}")
    print(f"  accident rate:    {100 * stats.accident_rate:.1f} %")
    print(f"  prevented rate:   {100 * stats.prevented_rate:.1f} %")
    print(f"  AEB trigger rate: {100 * stats.aeb_trigger_rate:.1f} %")
    min_ttc = "-" if stats.min_ttc is None else f"{stats.min_ttc:.2f} s"
    print(f"  min TTC:          {min_ttc}")


if __name__ == "__main__":
    main()
