#!/usr/bin/env python
"""Driver-attention study: prevention rate vs reaction time (Table VII).

Sweeps the driver's reaction time over the paper's 1.0-3.5 s range with
only driver interventions enabled, on the mixed attack (the hardest to
mitigate), and prints the prevention trend.

Run:
    python examples/driver_attention.py
"""

from repro import CampaignSpec, FaultType, InterventionConfig, run_campaign
from repro.analysis.render import format_table


def main():
    spec = CampaignSpec(
        fault_types=[FaultType.MIXED, FaultType.DESIRED_CURVATURE],
        repetitions=2,
        seed=2025,
    )
    rows = []
    for reaction_time in (1.0, 1.5, 2.0, 2.5, 3.0, 3.5):
        cfg = InterventionConfig(
            driver=True,
            driver_reaction_time=reaction_time,
            name=f"driver@{reaction_time:.1f}s",
        )
        print(f"simulating drivers with {reaction_time:.1f} s reaction time ...")
        campaign = run_campaign(spec, cfg)
        for fault, stats in sorted(campaign.by_fault_type().items()):
            rows.append(
                [
                    f"{reaction_time:.1f} s",
                    fault,
                    f"{100 * stats.prevented_rate:.1f}%",
                    f"{100 * stats.driver_brake_trigger_rate:.1f}%",
                    f"{100 * stats.driver_steer_trigger_rate:.1f}%",
                ]
            )
    print()
    print(
        format_table(
            ["Reaction", "Fault type", "Prevented", "Brake trig", "Steer trig"],
            rows,
            title="Prevention rate vs driver reaction time (driver-only)",
        )
    )
    print(
        "\nThe paper's Observation 5: lateral attacks cannot be easily"
        " mitigated, but highly alert drivers achieve notably better"
        " prevention rates."
    )


if __name__ == "__main__":
    main()
