#!/usr/bin/env python
"""Sharded, resumable, cached campaigns, end to end.

Distributed campaigns
---------------------

The paper's grids (360 episodes per intervention arm) are embarrassingly
parallel *across machines*, not just across local worker processes: episode
seeds are order-independent, so any contiguous slice of the enumeration can
run anywhere and the slices reassemble exactly.  The workflow is
**shard -> merge -> report**:

1. **shard** — every worker runs one slice of the same campaign::

       repro campaign --seed 2025 --shard 1/4 -o shard1.jsonl   # machine 1
       repro campaign --seed 2025 --shard 2/4 -o shard2.jsonl   # machine 2
       ...

   A killed worker restarts with ``--resume`` and re-runs only the episodes
   its shard JSONL does not already record.

2. **merge** — any machine validates and concatenates the shard files
   (refusing mixed-intervention, overlapping or truncated shards)::

       repro merge shard1.jsonl shard2.jsonl shard3.jsonl shard4.jsonl \\
           -o campaign.jsonl

   Shards passed in index order reproduce the unsharded campaign file byte
   for byte.

3. **report** — analysis consumes the merged JSONL (``CampaignResult.load``)
   or recomputes nothing at all: with ``REPRO_CACHE_DIR`` set (or
   ``--cache-dir``), every completed campaign is stored under a content
   digest of its spec + interventions, and ``repro report``/``run_campaign``
   return cached results without executing a single episode.

This script demonstrates all three stages in-process (plus the cache), on a
reduced grid.  See :mod:`examples.parallel_campaign` for the single-machine
process-pool layer underneath.

Run:
    python examples/sharded_campaign.py
"""

import os
import sys
import tempfile

from repro import (
    CampaignCache,
    CampaignSpec,
    FaultType,
    InterventionConfig,
    ShardSpec,
    enumerate_campaign,
    merge_shards,
    run_campaign,
)
from repro.core.cache import campaign_digest

MAX_STEPS = 2000  # keep the walkthrough quick; drop for full-length episodes


def main():
    # A reduced grid: 1 fault type x 2 gaps x 6 scenarios x 1 repetition.
    spec = CampaignSpec(
        fault_types=[FaultType.RELATIVE_DISTANCE], repetitions=1, seed=2025
    )
    safety = InterventionConfig(driver=True)
    workdir = tempfile.mkdtemp(prefix="sharded-campaign-")

    print("=== 1. shard: run 1/2 and 2/2 as independent campaigns ===")
    shard_paths = []
    for index in (1, 2):
        shard = ShardSpec(index=index, count=2)
        episodes = enumerate_campaign(spec, shard=shard)
        path = os.path.join(workdir, f"shard{index}.jsonl")
        # resume_path doubles as the output file: re-running this exact
        # command after an interruption re-executes only missing episodes.
        run_campaign(
            episodes, safety, resume_path=path, cache=False, max_steps=MAX_STEPS
        )
        shard_paths.append(path)
        print(f"  shard {shard}: {len(episodes)} episodes -> {path}")

    print("=== 2. merge: validate + concatenate the shard files ===")
    merged = merge_shards(shard_paths, output=os.path.join(workdir, "merged.jsonl"))
    serial = run_campaign(spec, safety, cache=False, max_steps=MAX_STEPS)
    assert merged.results == serial.results
    print(f"  merged {len(merged.results)} episodes == unsharded run, bit for bit")

    print("=== 3. cache: a repeated campaign executes zero episodes ===")
    cache = CampaignCache(os.path.join(workdir, "cache"))
    run_campaign(spec, safety, cache=cache, max_steps=MAX_STEPS)
    key = campaign_digest(spec, safety, max_steps=MAX_STEPS)
    print(f"  populated {cache.path(key)}")

    class RefuseToRun:
        """Executor stub proving the second invocation never dispatches."""

        def run(self, tasks, progress=None):
            raise AssertionError("cache hit should not execute episodes")

    cached = run_campaign(
        spec, safety, cache=cache, executor=RefuseToRun(), max_steps=MAX_STEPS
    )
    assert cached.results == serial.results
    print("  second invocation served from cache (0 episodes executed)")

    stats = merged.overall()
    print(f"accident rate: {100 * stats.accident_rate:.1f} %; "
          f"prevented rate: {100 * stats.prevented_rate:.1f} %")


if __name__ == "__main__":
    sys.exit(main())
