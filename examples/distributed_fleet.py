#!/usr/bin/env python
"""The distributed campaign scheduler, end to end.

Plan → dispatch → collect
-------------------------

PR 2's exchange protocol (digest-keyed shard JSONLs, resume prefixes, the
shared cache) made campaigns *distributable*; the scheduler
(:mod:`repro.core.scheduler`) adds the missing orchestration:

1. **plan** — :class:`CampaignPlan` cuts one campaign into digest-keyed
   :class:`ShardJob`\\ s (contiguous ``ShardSpec`` slices, so every
   machine computes the same partition);
2. **dispatch** — a registered :class:`WorkerBackend` executes the jobs.
   The ``subprocess`` backend used here spawns real ``repro worker``
   processes, each consuming a shard-spec JSON file and emitting the
   shard JSONL + ``.digest`` sidecar — the same protocol an SSH or
   container fleet speaks;
3. **collect** — the shard files are validated under the ``repro merge``
   invariants plus the plan identity, concatenated byte-identically to a
   serial run, and written through the shared cache, so a repeat
   dispatch executes zero episodes and the incremental report pipeline
   picks the campaign up for free.

The command-line equivalent of this script::

    repro dispatch --fault relative_distance --reps 2 --driver \\
        --backend subprocess --workers 2 --workdir fleet \\
        --cache-dir cache -o campaign.jsonl

Run:
    python examples/distributed_fleet.py
"""

import os
import sys
import tempfile

from repro import (
    CampaignCache,
    CampaignSpec,
    FaultType,
    InterventionConfig,
    dispatch_campaign,
    registered_backends,
    run_campaign,
)
from repro.core.scheduler import CampaignPlan, SubprocessFleetBackend


def main() -> int:
    # Reduced grid: one fault type, one gap, 2 repetitions -> 12 episodes.
    spec = CampaignSpec(
        fault_types=[FaultType.RELATIVE_DISTANCE],
        initial_gaps=(60.0,),
        repetitions=2,
        seed=2025,
    )
    cfg = InterventionConfig(driver=True)
    print(f"registered worker backends: {', '.join(registered_backends())}")

    # Spawned workers must import this checkout, exactly like a fleet
    # machine needs the package on its path.
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    os.environ["PYTHONPATH"] = (
        src + os.pathsep + os.environ.get("PYTHONPATH", "")
    )

    serial = run_campaign(spec, cfg, cache=False, max_steps=1500)

    with tempfile.TemporaryDirectory() as root:
        workdir = os.path.join(root, "fleet")
        cache = CampaignCache(os.path.join(root, "cache"))

        plan = CampaignPlan.build(spec, cfg, shards=2, max_steps=1500)
        print(f"plan: {plan.total} episodes over {len(plan.jobs)} shards")
        for job in plan.jobs:
            print(f"  shard {job.shard}: {job.total} episodes, "
                  f"digest {job.digest()[:16]}…")

        fleet = dispatch_campaign(
            spec,
            cfg,
            backend=SubprocessFleetBackend(workers=2),
            workdir=workdir,
            cache=cache,
            log=lambda line: print(f"  {line}"),
            max_steps=1500,
        )
        assert fleet.results == serial.results  # bit-identical, always
        print(f"fleet run matches serial byte-for-byte "
              f"({len(fleet.results)} episodes)")
        shard_files = sorted(
            name for name in os.listdir(workdir) if name.endswith(".jsonl")
        )
        print(f"workdir shard files: {', '.join(shard_files)}")

        # A repeat dispatch is a full-campaign cache hit: zero episodes,
        # zero workers.
        again = dispatch_campaign(
            spec,
            cfg,
            backend=SubprocessFleetBackend(workers=2),
            workdir=workdir,
            cache=cache,
            log=lambda line: print(f"  {line}"),
            max_steps=1500,
        )
        assert again.results == serial.results
        print("warm repeat dispatch served from cache")
    return 0


if __name__ == "__main__":
    sys.exit(main())
