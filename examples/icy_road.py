#!/usr/bin/env python
"""Weather study: hazard mitigation under reduced road friction (Table VIII).

Re-runs the relative-distance and curvature attacks under the four road
conditions of the paper's Table VIII with the footnoted intervention set
(driver + safety check + AEB on compromised data).

Run:
    python examples/icy_road.py
"""

from repro import CampaignSpec, FaultType, InterventionConfig, run_campaign
from repro.analysis.render import format_table
from repro.safety.aebs import AebsConfig
from repro.sim.weather import FRICTION_CONDITIONS


def main():
    cfg = InterventionConfig(
        driver=True, safety_check=True, aeb=AebsConfig.COMPROMISED,
        name="driver+check+aeb_comp",
    )
    rows = []
    for label, condition in FRICTION_CONDITIONS.items():
        print(
            f"simulating {label!r} (mu={condition.mu:.2f}, max decel "
            f"{condition.max_deceleration:.1f} m/s^2) ..."
        )
        spec = CampaignSpec(
            fault_types=[FaultType.RELATIVE_DISTANCE, FaultType.DESIRED_CURVATURE],
            repetitions=2,
            seed=2025,
            friction=condition,
        )
        campaign = run_campaign(spec, cfg)
        for fault, stats in sorted(campaign.by_fault_type().items()):
            rows.append(
                [label, f"{condition.mu:.2f}", fault, f"{100 * stats.prevented_rate:.1f}%"]
            )
    print()
    print(
        format_table(
            ["Condition", "mu", "Fault type", "Prevented"],
            rows,
            title="Hazard prevention vs road friction (Table VIII setup)",
        )
    )
    print(
        "\nThe paper's finding: mitigation stays roughly stable down to 50%"
        " friction (heavy rain) but lateral mitigation collapses on icy"
        " roads (75% off)."
    )


if __name__ == "__main__":
    main()
