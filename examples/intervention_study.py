#!/usr/bin/env python
"""Intervention study: a reduced Table VI campaign.

Runs every fault type from the paper's Table III across four intervention
configurations on identical episode seeds, and prints the resulting
Table VI-style comparison.

Run:
    python examples/intervention_study.py           # quick (2 reps)
    REPRO_FULL=1 python examples/intervention_study.py   # paper-scale
"""

import os

from repro import AebsConfig, CampaignSpec, InterventionConfig, run_campaign
from repro.analysis.tables import render_table6, table6_row
from repro.core.metrics import group_by

CONFIGS = [
    InterventionConfig(name="none"),
    InterventionConfig(driver=True, name="driver"),
    InterventionConfig(aeb=AebsConfig.COMPROMISED, name="aeb_comp"),
    InterventionConfig(aeb=AebsConfig.INDEPENDENT, name="aeb_indep"),
    InterventionConfig(
        driver=True, safety_check=True, aeb=AebsConfig.INDEPENDENT,
        name="driver+check+aeb_indep",
    ),
]


def main():
    reps = 10 if os.environ.get("REPRO_FULL") == "1" else 2
    spec = CampaignSpec(repetitions=reps, seed=2025)
    total = 0
    rows = []
    for cfg in CONFIGS:
        def progress(done, n, label=cfg.label()):
            if done % 24 == 0 or done == n:
                print(f"  [{label}] {done}/{n} episodes", flush=True)

        print(f"running campaign under {cfg.label()!r} ...")
        campaign = run_campaign(spec, cfg, progress=progress)
        total += len(campaign.results)
        for fault, results in sorted(group_by(campaign.results, "fault_type").items()):
            rows.append(table6_row(results, cfg.label()))

    rows.sort(key=lambda r: (r.fault_type, r.intervention))
    print()
    print(render_table6(rows))
    print(f"\n{total} episodes simulated.")
    print(
        "Compare with the paper's Table VI: independent-sensor AEB dominates"
        " on relative-distance attacks, lateral (curvature) attacks stay the"
        " hardest to mitigate, and every mechanism beats no protection."
    )


if __name__ == "__main__":
    main()
